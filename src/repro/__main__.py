"""Command-line MPMB search.

Usage::

    # On a graph file (TSV format, see repro.graph.io):
    python -m repro search graph.tsv --method ols --trials 20000 --top 5

    # On a bundled dataset stand-in:
    python -m repro search --dataset movielens --profile bench --top 10

    # Observability: metrics JSON, phase-trace summary, cProfile dump
    # ("search" and a default dataset are implied when flags lead):
    python -m repro --method ols --metrics-out m.json --trace

    # Dataset statistics (the Table III columns):
    python -m repro stats --dataset abide
    python -m repro stats graph.tsv
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from typing import List, Optional

from .core import find_mpmb
from .core.mpmb import METHODS
from .errors import CheckpointError, ConfigurationError
from .core.results import MPMBResult
from .datasets import dataset_names, load_dataset
from .experiments.report import format_seconds, format_table
from .graph import UncertainBipartiteGraph, compute_stats, load_graph
from .observability import Observer, ensure_observer
from .observability.profiling import maybe_cprofile
from .runtime import POOLABLE_METHODS, RuntimePolicy, run_parallel_trials

#: Dataset generated when a command is given no graph source at all.
DEFAULT_DATASET = "abide"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Most Probable Maximum Weighted Butterfly search.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser(
        "search", help="find the top-k MPMBs of a graph"
    )
    _add_source_arguments(search)
    search.add_argument(
        "--method", default="ols", choices=METHODS,
        help="MPMB method (default: ols)",
    )
    search.add_argument(
        "--trials", type=int, default=20_000,
        help="sampling trials (default: 20000, the paper setting)",
    )
    search.add_argument(
        "--prepare", type=int, default=100,
        help="preparing trials for OLS variants (default: 100)",
    )
    search.add_argument(
        "--adaptive", action="store_true",
        help="anytime adaptive allocation: race candidates with "
             "empirical-Bernstein intervals and stop early once the "
             "winner is certified (sampling methods only; the realised "
             "epsilon is reported in place of the worst-case target; "
             "see docs/performance.md)",
    )
    search.add_argument(
        "--mu", type=float, default=0.05, metavar="MU",
        help="smallest probability the epsilon-delta guarantee covers "
             "(default: 0.05; sizes ols-kl dynamic budgets and scales "
             "the adaptive stop rule)",
    )
    search.add_argument(
        "--epsilon", type=float, default=0.1, metavar="EPS",
        help="relative error target for ols-kl dynamic sizing "
             "(default: 0.1)",
    )
    search.add_argument(
        "--delta", type=float, default=0.1, metavar="DELTA",
        help="failure probability of the guarantee (default: 0.1; "
             "also the adaptive mode's total failure budget)",
    )
    search.add_argument(
        "--block-size", type=int, default=None, metavar="N",
        help="evaluate trials through the batched kernel layer, N "
             "trials per vectorised call (sampling methods only; "
             "default: scalar per-trial loop; see docs/performance.md)",
    )
    search.add_argument(
        "--top", type=int, default=1, help="how many MPMBs to report"
    )
    search.add_argument("--seed", type=int, default=None, help="RNG seed")
    search.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="periodically snapshot the trial loop to PATH (atomic JSON)",
    )
    search.add_argument(
        "--checkpoint-every", type=int, default=1000, metavar="N",
        help="trials between checkpoint snapshots (default: 1000)",
    )
    search.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume the trial loop from a checkpoint written by "
             "--checkpoint (bit-identical to an uninterrupted run)",
    )
    search.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; on expiry the partial result is "
             "reported as degraded with a re-widened guarantee",
    )
    search.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fault-tolerant parallel worker processes (poolable "
             "methods only; default: 1 = in-process)",
    )
    search.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics and phase spans to PATH as JSON "
             "(schema: docs/observability.md)",
    )
    search.add_argument(
        "--trace", action="store_true",
        help="print the phase-span tree and metric table after the run",
    )
    search.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="profile the search with cProfile and write the pstats "
             "report to PATH (opt-in: profiling distorts timings)",
    )

    stats = commands.add_parser(
        "stats", help="print dataset statistics (Table III columns)"
    )
    _add_source_arguments(stats)

    serve = commands.add_parser(
        "serve",
        help="run the fault-tolerant MPMB query service "
             "(docs/service.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port", type=int, default=8642,
        help="bind port (0 = ephemeral; default: 8642)",
    )
    serve.add_argument(
        "--datasets", nargs="+", default=None, metavar="NAME",
        choices=dataset_names(),
        help="datasets to load and serve (default: all registered)",
    )
    serve.add_argument(
        "--profile", default="bench", choices=("bench", "paper"),
        help="dataset profile served by the registry",
    )
    serve.add_argument(
        "--dataset-seed", type=int, default=0,
        help="generation seed for every served dataset",
    )
    serve.add_argument(
        "--rate", type=float, default=50.0,
        help="sustained admissions per second (token-bucket refill)",
    )
    serve.add_argument(
        "--burst", type=float, default=10.0,
        help="instantaneous admission burst capacity",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=4,
        help="simultaneous requests executing (bounded queue)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=128,
        help="LRU result-cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--backbone-k", type=int, default=8,
        help="top-weight butterflies kept warm per graph",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive failures that open a dataset's breaker",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0,
        help="seconds an open breaker waits before half-opening",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log each HTTP request to stderr",
    )
    return parser


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "graph", nargs="?", default=None,
        help="path to a graph TSV (omit when using --dataset)",
    )
    parser.add_argument(
        "--dataset", default=None, choices=dataset_names(),
        help="bundled dataset stand-in to generate instead of a file",
    )
    parser.add_argument(
        "--profile", default="bench", choices=("bench", "paper"),
        help="dataset profile when --dataset is used",
    )
    parser.add_argument(
        "--dataset-seed", type=int, default=0,
        help="generation seed when --dataset is used",
    )


def _load(args: argparse.Namespace) -> UncertainBipartiteGraph:
    if args.graph is not None and args.dataset is not None:
        raise SystemExit(
            "provide exactly one graph source: a TSV path or --dataset"
        )
    if args.graph is not None:
        return load_graph(args.graph)
    dataset = args.dataset
    if dataset is None:
        dataset = DEFAULT_DATASET
        print(
            f"no graph source given; defaulting to --dataset {dataset} "
            f"--profile {args.profile}",
            file=sys.stderr,
        )
    return load_dataset(dataset, args.profile, rng=args.dataset_seed)


def _validate_search(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Reject invalid search options upfront with a clear exit-2 error."""
    exact = args.method.startswith("exact-")
    if args.trials < 0 or (
        args.trials == 0 and args.method != "ols-kl" and not exact
    ):
        parser.error(
            f"--trials must be at least 1 for method {args.method!r} "
            f"(got {args.trials}); only ols-kl accepts 0 for dynamic "
            "Lemma VI.4 sizing"
        )
    if args.prepare <= 0:
        parser.error(f"--prepare must be at least 1 (got {args.prepare})")
    if args.top <= 0:
        parser.error(f"--top must be at least 1 (got {args.top})")
    if args.timeout is not None and args.timeout <= 0:
        parser.error(f"--timeout must be positive (got {args.timeout})")
    if args.checkpoint_every <= 0:
        parser.error(
            f"--checkpoint-every must be at least 1 "
            f"(got {args.checkpoint_every})"
        )
    if args.workers <= 0:
        parser.error(f"--workers must be at least 1 (got {args.workers})")
    if args.block_size is not None and args.block_size <= 0:
        parser.error(
            f"--block-size must be at least 1 (got {args.block_size})"
        )
    if exact and (
        args.checkpoint or args.resume or args.timeout is not None
        or args.workers > 1
    ):
        parser.error(
            f"--checkpoint/--resume/--timeout/--workers do not apply to "
            f"the exact method {args.method!r}"
        )
    if exact and args.block_size is not None:
        parser.error(
            f"--block-size does not apply to the exact method "
            f"{args.method!r}"
        )
    if exact and args.adaptive:
        parser.error(
            f"--adaptive does not apply to the exact method "
            f"{args.method!r}"
        )
    if not 0.0 < args.mu <= 1.0:
        parser.error(f"--mu must be in (0, 1] (got {args.mu})")
    if args.epsilon <= 0.0:
        parser.error(f"--epsilon must be positive (got {args.epsilon})")
    if not 0.0 < args.delta < 1.0:
        parser.error(f"--delta must be in (0, 1) (got {args.delta})")
    if args.workers > 1:
        if args.method not in POOLABLE_METHODS:
            parser.error(
                f"--workers requires a poolable method "
                f"({', '.join(POOLABLE_METHODS)}); {args.method!r} "
                "results cannot be pooled by trial-weighted averaging"
            )
        if args.checkpoint or args.resume:
            parser.error(
                "--checkpoint/--resume cannot be combined with "
                "--workers > 1; checkpointing covers the in-process loop"
            )


def _search_policy(args: argparse.Namespace) -> Optional[RuntimePolicy]:
    if (
        args.checkpoint is None
        and args.resume is None
        and args.timeout is None
    ):
        return None
    return RuntimePolicy(
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume_from=args.resume,
        timeout_seconds=args.timeout,
    )


def _build_observer(args: argparse.Namespace) -> Optional[Observer]:
    """A live observer when any observability flag asked for one."""
    if args.metrics_out or args.trace or args.profile_out:
        return Observer()
    return None


def _run_search(args: argparse.Namespace) -> int:
    observer = ensure_observer(_build_observer(args))
    with observer.span("graph-load"):
        graph = _load(args)
    print(f"Graph: {graph!r}")
    start = time.perf_counter()
    with maybe_cprofile(args.profile_out is not None) as profile:
        shared = {}
        if args.adaptive:
            # --delta is the anytime mode's total failure budget, for
            # every method (it also keeps sizing ols-kl's static caps).
            shared["adaptive"] = {"delta": args.delta}
        if args.method in ("ols", "ols-kl"):
            shared.update(
                mu=args.mu, epsilon=args.epsilon, delta=args.delta
            )
        if args.workers > 1:
            result = run_parallel_trials(
                graph, args.trials, args.workers, method=args.method,
                rng=args.seed, n_prepare=args.prepare,
                block_size=args.block_size,
                observer=observer if observer.enabled else None,
                **shared,
            )
        else:
            policy = _search_policy(args)
            kwargs = {} if policy is None else {"runtime": policy}
            if args.block_size is not None:
                kwargs["block_size"] = args.block_size
            result = find_mpmb(
                graph, method=args.method, n_trials=args.trials,
                n_prepare=args.prepare, rng=args.seed,
                observer=observer if observer.enabled else None,
                **shared, **kwargs,
            )
    elapsed = time.perf_counter() - start
    _write_observability_outputs(args, observer, profile, result)
    if result.degraded:
        _print_degraded_notice(result)
    if result.best is None:
        print("No butterfly observed in any sampled world.")
        return 130 if result.degraded_reason == "interrupted" else 1
    rows = [
        [rank, str(labels), f"{weight:g}", f"{probability:.5f}"]
        for rank, (labels, weight, probability) in enumerate(
            result.labelled_ranking(args.top), start=1
        )
    ]
    print(format_table(
        ["rank", "butterfly (u1, u2, v1, v2)", "weight", "P(B)"],
        rows,
        title=(
            f"Top-{args.top} MPMB via {result.method} "
            f"({result.n_trials} trials, {format_seconds(elapsed)})"
        ),
    ))
    return 130 if result.degraded_reason == "interrupted" else 0


def _write_observability_outputs(
    args: argparse.Namespace,
    observer: Observer,
    profile,
    result: MPMBResult,
) -> None:
    """Emit --metrics-out / --trace / --profile-out artefacts."""
    if not observer.enabled:
        return
    if args.metrics_out:
        document = observer.export_document(
            method=result.method, graph_name=result.graph.name
        )
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"Metrics written to {args.metrics_out}", file=sys.stderr)
    if args.trace:
        print(observer.summary())
    if args.profile_out:
        with open(args.profile_out, "w", encoding="utf-8") as handle:
            handle.write(profile.report)
        print(f"Profile written to {args.profile_out}", file=sys.stderr)


def _print_degraded_notice(result: MPMBResult) -> None:
    """Explain a partial result before ranking it."""
    reasons = {
        "deadline": "the wall-clock budget expired",
        "interrupted": "the run was interrupted",
        "workers-dropped": "some workers failed permanently",
    }
    why = reasons.get(result.degraded_reason, result.degraded_reason)
    target = (
        f" of {result.target_trials} planned"
        if result.target_trials is not None
        else ""
    )
    print(
        f"DEGRADED result: {why}; estimates cover "
        f"{result.n_trials} trials{target}."
    )
    if result.guarantee is not None:
        print(f"Re-widened guarantee: {result.guarantee}")


def _run_stats(args: argparse.Namespace) -> int:
    graph = _load(args)
    stats = compute_stats(graph)
    rows = [
        ["name", stats.name],
        ["|E|", stats.n_edges],
        ["|L|", stats.n_left],
        ["|R|", stats.n_right],
        ["mean weight", f"{stats.mean_weight:.4f}"],
        ["mean probability", f"{stats.mean_prob:.4f}"],
        ["max degree (L / R)",
         f"{stats.max_degree_left} / {stats.max_degree_right}"],
        ["OS per-trial cost proxy (Lemma V.1)",
         f"{stats.os_cost_proxy:.1f}"],
        ["MC-VP per-trial cost proxy (Lemma IV.1)",
         f"{stats.mcvp_cost_proxy:.1f}"],
    ]
    print(format_table(["statistic", "value"], rows))
    return 0


#: Set by the SIGTERM handler so exit codes distinguish a termination
#: request (143 = 128+SIGTERM) from Ctrl-C (130 = 128+SIGINT).  Both
#: ride the same KeyboardInterrupt path through the engine, so SIGTERM
#: gets the exact partial-result + re-widened-guarantee treatment that
#: SIGINT already has.
_SIGTERM_RECEIVED = False


def _handle_sigterm(signum, frame) -> None:
    """Module-level SIGTERM handler: reuse the graceful SIGINT path."""
    global _SIGTERM_RECEIVED
    _SIGTERM_RECEIVED = True
    raise KeyboardInterrupt()


def _install_sigterm_handler() -> None:
    global _SIGTERM_RECEIVED
    _SIGTERM_RECEIVED = False
    try:
        signal.signal(signal.SIGTERM, _handle_sigterm)
    except ValueError:
        # signal.signal only works on the main thread; embedded callers
        # (e.g. test runners driving main() from a worker thread) keep
        # the SIGINT-only behaviour.
        pass


def _exit_code(code: int) -> int:
    """Remap the interrupt exit code when the interrupt was a SIGTERM."""
    if code == 130 and _SIGTERM_RECEIVED:
        return 143
    return code


def _run_serve(args: argparse.Namespace) -> int:
    from .service import (
        AdmissionController,
        BreakerBoard,
        GraphRegistry,
        QueryBroker,
        ResultCache,
    )
    from .service.http import make_server

    observer = Observer()
    datasets = args.datasets or dataset_names()
    registry = GraphRegistry(
        datasets, profile=args.profile, dataset_seed=args.dataset_seed,
        backbone_k=args.backbone_k, observer=observer,
    )
    print(f"loading {len(datasets)} dataset(s)...", file=sys.stderr)
    registry.load_all()
    for row in registry.describe():
        print(
            f"  {row['dataset']}: {row['status']} "
            f"(v{row['version']}, {row['n_edges']} edges, "
            f"{row['load_seconds']:.2f}s)",
            file=sys.stderr,
        )
    broker = QueryBroker(
        registry,
        admission=AdmissionController(
            rate=args.rate, burst=args.burst,
            max_inflight=args.max_inflight,
        ),
        breakers=BreakerBoard(
            failure_threshold=args.breaker_threshold,
            cooldown_seconds=args.breaker_cooldown,
        ),
        cache=ResultCache(args.cache_size),
        observer=observer,
    )
    server = make_server(
        broker, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    print(
        f"serving on http://{host}:{port} "
        f"(POST /query, GET /healthz /readyz /metrics)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


def _validate_serve(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    if args.port < 0 or args.port > 65535:
        parser.error(f"--port must be in [0, 65535] (got {args.port})")
    if args.rate <= 0:
        parser.error(f"--rate must be positive (got {args.rate})")
    if args.burst < 1:
        parser.error(f"--burst must be at least 1 (got {args.burst})")
    if args.max_inflight <= 0:
        parser.error(
            f"--max-inflight must be at least 1 (got {args.max_inflight})"
        )
    if args.cache_size < 0:
        parser.error(
            f"--cache-size must be non-negative (got {args.cache_size})"
        )
    if args.backbone_k <= 0:
        parser.error(
            f"--backbone-k must be at least 1 (got {args.backbone_k})"
        )
    if args.breaker_threshold <= 0:
        parser.error(
            f"--breaker-threshold must be at least 1 "
            f"(got {args.breaker_threshold})"
        )
    if args.breaker_cooldown <= 0:
        parser.error(
            f"--breaker-cooldown must be positive "
            f"(got {args.breaker_cooldown})"
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    # Flag-led invocations imply the search command, so the README's
    # one-liners work without the subcommand boilerplate:
    # ``python -m repro --method ols --metrics-out m.json --trace``.
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv = ["search", *argv]
    args = parser.parse_args(argv)
    _install_sigterm_handler()
    try:
        if args.command == "search":
            _validate_search(parser, args)
            return _exit_code(_run_search(args))
        if args.command == "stats":
            return _run_stats(args)
        if args.command == "serve":
            _validate_serve(parser, args)
            return _run_serve(args)
    except KeyboardInterrupt:
        # The engine converts mid-loop Ctrl-C into a degraded result;
        # this guards the phases outside the trial loop (graph loading,
        # preparing, exact solvers) so no traceback reaches the user.
        print("interrupted before a partial result was available",
              file=sys.stderr)
        return _exit_code(130)
    except CheckpointError as error:
        # A wrong/corrupt --resume or --checkpoint target is a usage
        # problem; the message says what mismatched.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ConfigurationError as error:
        # Out-of-range knobs that only surface once the run sizes its
        # budgets (e.g. an epsilon-delta target over the Theorem IV.1
        # trial cap) are usage errors too, not crashes.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"unknown command {args.command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
