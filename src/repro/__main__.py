"""Command-line MPMB search.

Usage::

    # On a graph file (TSV format, see repro.graph.io):
    python -m repro search graph.tsv --method ols --trials 20000 --top 5

    # On a bundled dataset stand-in:
    python -m repro search --dataset movielens --profile bench --top 10

    # Dataset statistics (the Table III columns):
    python -m repro stats --dataset abide
    python -m repro stats graph.tsv
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .core import find_mpmb
from .core.mpmb import METHODS
from .datasets import dataset_names, load_dataset
from .experiments.report import format_seconds, format_table
from .graph import UncertainBipartiteGraph, compute_stats, load_graph


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Most Probable Maximum Weighted Butterfly search.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser(
        "search", help="find the top-k MPMBs of a graph"
    )
    _add_source_arguments(search)
    search.add_argument(
        "--method", default="ols", choices=METHODS,
        help="MPMB method (default: ols)",
    )
    search.add_argument(
        "--trials", type=int, default=20_000,
        help="sampling trials (default: 20000, the paper setting)",
    )
    search.add_argument(
        "--prepare", type=int, default=100,
        help="preparing trials for OLS variants (default: 100)",
    )
    search.add_argument(
        "--top", type=int, default=1, help="how many MPMBs to report"
    )
    search.add_argument("--seed", type=int, default=None, help="RNG seed")

    stats = commands.add_parser(
        "stats", help="print dataset statistics (Table III columns)"
    )
    _add_source_arguments(stats)
    return parser


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "graph", nargs="?", default=None,
        help="path to a graph TSV (omit when using --dataset)",
    )
    parser.add_argument(
        "--dataset", default=None, choices=dataset_names(),
        help="bundled dataset stand-in to generate instead of a file",
    )
    parser.add_argument(
        "--profile", default="bench", choices=("bench", "paper"),
        help="dataset profile when --dataset is used",
    )
    parser.add_argument(
        "--dataset-seed", type=int, default=0,
        help="generation seed when --dataset is used",
    )


def _load(args: argparse.Namespace) -> UncertainBipartiteGraph:
    if (args.graph is None) == (args.dataset is None):
        raise SystemExit(
            "provide exactly one graph source: a TSV path or --dataset"
        )
    if args.graph is not None:
        return load_graph(args.graph)
    return load_dataset(args.dataset, args.profile, rng=args.dataset_seed)


def _run_search(args: argparse.Namespace) -> int:
    graph = _load(args)
    print(f"Graph: {graph!r}")
    start = time.perf_counter()
    result = find_mpmb(
        graph, method=args.method, n_trials=args.trials,
        n_prepare=args.prepare, rng=args.seed,
    )
    elapsed = time.perf_counter() - start
    if result.best is None:
        print("No butterfly observed in any sampled world.")
        return 1
    rows = [
        [rank, str(labels), f"{weight:g}", f"{probability:.5f}"]
        for rank, (labels, weight, probability) in enumerate(
            result.labelled_ranking(args.top), start=1
        )
    ]
    print(format_table(
        ["rank", "butterfly (u1, u2, v1, v2)", "weight", "P(B)"],
        rows,
        title=(
            f"Top-{args.top} MPMB via {result.method} "
            f"({result.n_trials} trials, {format_seconds(elapsed)})"
        ),
    ))
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    graph = _load(args)
    stats = compute_stats(graph)
    rows = [
        ["name", stats.name],
        ["|E|", stats.n_edges],
        ["|L|", stats.n_left],
        ["|R|", stats.n_right],
        ["mean weight", f"{stats.mean_weight:.4f}"],
        ["mean probability", f"{stats.mean_prob:.4f}"],
        ["max degree (L / R)",
         f"{stats.max_degree_left} / {stats.max_degree_right}"],
        ["OS per-trial cost proxy (Lemma V.1)",
         f"{stats.os_cost_proxy:.1f}"],
        ["MC-VP per-trial cost proxy (Lemma IV.1)",
         f"{stats.mcvp_cost_proxy:.1f}"],
    ]
    print(format_table(["statistic", "value"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "search":
        return _run_search(args)
    if args.command == "stats":
        return _run_stats(args)
    print(f"unknown command {args.command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
