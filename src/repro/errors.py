"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base class when they want to
distinguish library failures from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphValidationError(ReproError, ValueError):
    """An uncertain bipartite graph violates a structural invariant.

    Raised for out-of-range probabilities, non-positive weights, duplicate
    edges, unknown vertex labels, or vertices appearing on both sides of
    the bipartition.
    """


class GraphFormatError(ReproError, ValueError):
    """An on-disk graph file could not be parsed."""


class IntractableError(ReproError, RuntimeError):
    """An exact computation would exceed its configured enumeration budget.

    The exact MPMB solvers enumerate possible worlds (or apply
    inclusion-exclusion over candidate butterflies), both of which are
    exponential; this error signals that the instance is too large rather
    than silently running forever.
    """


class EstimationError(ReproError, RuntimeError):
    """A probability estimator was configured or invoked inconsistently."""


class DatasetError(ReproError, ValueError):
    """A dataset generator or the dataset registry received bad arguments."""


class ConfigurationError(ReproError, ValueError):
    """A public entry point received an invalid or inconsistent argument.

    Raised by the runtime and the core estimators for bad budgets,
    unknown methods, out-of-range ε/δ targets, and other caller
    mistakes.  Subclasses :class:`ValueError` so existing callers (and
    tests) that catch ``ValueError`` keep working.
    """


class TrialBudgetExceeded(ReproError, RuntimeError):
    """A trial loop exhausted its wall-clock or trial budget.

    The resilient runtime normally *degrades* instead of raising — it
    stops cleanly and returns a partial result flagged ``degraded=True``
    — but callers that demand the full budget (e.g. certification runs)
    can ask the runtime to raise this instead.
    """


class CheckpointError(ReproError, RuntimeError):
    """A runtime checkpoint could not be written, read, or applied.

    Raised for unwritable checkpoint targets, corrupt or truncated
    snapshot files, and snapshots that do not match the run being
    resumed (different method, graph, or trial target).
    """


class WorkerFailureError(ReproError, RuntimeError):
    """Every worker of a parallel trial pool failed permanently.

    Individual worker crashes, hangs, and stragglers are retried with
    exponential backoff and, past the attempt cap, dropped (the merged
    result is then flagged degraded); this error signals that *no*
    worker survived, so there is no partial result to return.
    """


class ServiceError(ReproError, RuntimeError):
    """Base class for failures raised by the long-lived query service.

    Every subclass corresponds to an *explicit*, well-formed service
    response: the broker converts these into rejection/failed responses
    rather than letting them crash a request thread.
    """


class AdmissionRejectedError(ServiceError):
    """A request was rejected by admission control (backpressure).

    Raised when the token bucket has no capacity and the bounded wait
    queue is full — the service sheds load explicitly instead of
    queueing unboundedly.  Retry later, ideally with client-side
    backoff.
    """


class CircuitOpenError(ServiceError):
    """A request hit an open per-dataset circuit breaker.

    The breaker opened after repeated estimator/worker failures on this
    dataset; it half-opens after a cooldown and admits probe requests
    before closing again.
    """


class GraphUnavailableError(ServiceError):
    """The requested graph is not servable (unknown, failed, quarantined).

    A corrupt or checksum-mismatched artifact is *quarantined* at load
    time — the registry records the failure and keeps serving every
    other graph instead of crashing the process.
    """
