"""Fault-tolerant parallel trial execution.

Butterfly sampling parallelises embarrassingly well (Shi & Shun's
parallel butterfly work makes the same observation for certain graphs):
the frequency-based methods pool across independent trial streams by
trial-weighted averaging (:func:`~repro.core.results.merge_results`).
This module turns that observation into a production worker pool:

* each worker is a ``multiprocessing`` process running its share of the
  trial budget on an independent spawned RNG stream;
* a crashed worker (non-zero exit, missing result) is retried with
  exponential backoff — deterministically jittered from a stream
  spawned off the run RNG, so retry bursts decorrelate while replays
  stay bit-identical — up to a capped attempt count, with the *same*
  trial stream, so retries are deterministic;
* a straggler that exceeds the timeout is terminated and treated as a
  failed attempt;
* workers that fail permanently are dropped, and the surviving partial
  results merge into a result flagged ``degraded=True`` whose ε-δ
  guarantee is re-widened to the trials actually pooled (the
  Theorem IV.1 bound inverted for the achieved ``N``, as in
  :mod:`~repro.runtime.degradation`).

Only the frequency-based methods (``mc-vp``, ``os``, ``ols``) are
poolable: their estimates are trial-weighted averages, so pooled
streams obey the same Theorem IV.1 / Lemma V.2 analysis as one stream
of the combined length.  OLS-KL is excluded because Lemma VI.4 sizes
its trial count *per candidate* from that candidate's existence
probability (Eq. 8) — per-worker shares of a dynamic budget do not
average.  Per-worker observability metrics merge under the same policy
(dropped workers contribute nothing; see ``docs/observability.md``).

Failures are injectable through :class:`~repro.runtime.faults.FaultPlan`
so every path above is exercised by deterministic tests.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import reduce
from typing import Callable, Dict, List, Optional

import multiprocessing

from ..errors import ConfigurationError, WorkerFailureError
from ..observability import (
    MetricsRegistry,
    Observer,
    ensure_observer,
)
from ..sampling.rng import RngLike, ensure_rng, spawn_rngs
from .degradation import recompute_guarantee
from .faults import CRASH_EXIT_CODE, HANG_SECONDS, FaultPlan

#: Methods whose results pool by trial-weighted averaging.
POOLABLE_METHODS = ("mc-vp", "os", "ols")


@dataclass
class WorkerReport:
    """Outcome of one worker across all its attempts.

    Attributes:
        worker_id: 0-based worker index.
        attempts: Attempts consumed (1 = succeeded first try).
        status: ``"ok"`` or ``"dropped"``.
        n_trials: Trials this worker contributed (0 when dropped).
        error: Last failure description (``None`` when it succeeded
            first try).
    """

    worker_id: int
    attempts: int
    status: str
    n_trials: int
    error: Optional[str] = None


def split_trials(
    n_trials: int, n_workers: int, block_size: Optional[int] = None
) -> List[int]:
    """Near-even per-worker trial shares summing to ``n_trials``.

    With ``block_size`` the pool shards *blocks* rather than single
    trials: every worker's share is a whole number of blocks (the one
    remainder block, if any, counts as one), so each worker's batched
    kernel runs full-size blocks and no block straddles two workers.
    Workers assigned zero blocks get zero trials.
    """
    if n_trials <= 0:
        raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
    if n_workers <= 0:
        raise ConfigurationError(f"n_workers must be positive, got {n_workers}")
    if block_size is None:
        base, extra = divmod(n_trials, n_workers)
        return [base + (1 if w < extra else 0) for w in range(n_workers)]
    if block_size <= 0:
        raise ConfigurationError(
            f"block_size must be positive, got {block_size}"
        )
    full_blocks, remainder = divmod(n_trials, block_size)
    units = full_blocks + (1 if remainder else 0)
    base, extra = divmod(units, n_workers)
    unit_shares = [base + (1 if w < extra else 0) for w in range(n_workers)]
    shares = [units_w * block_size for units_w in unit_shares]
    if remainder:
        # The remainder block lives with the last worker that got blocks.
        for w in range(n_workers - 1, -1, -1):
            if shares[w] > 0:
                shares[w] -= block_size - remainder
                break
    return shares


def backoff_seconds(
    attempt: int,
    base: float = 0.05,
    cap: float = 2.0,
    jitter: Optional[RngLike] = None,
) -> float:
    """Exponential backoff before retry ``attempt + 1`` (capped).

    With ``jitter`` (a generator or seed) the capped delay is scaled by
    a uniform draw from ``[0.5, 1.0]`` — "equal jitter".  A fixed
    backoff synchronises every retrying worker after a straggler kill
    into one thundering-herd burst; jitter decorrelates the bursts.
    Drawing from a generator spawned off the run RNG keeps replays
    bit-identical: the same seed produces the same backoff schedule.
    """
    delay = min(cap, base * (2.0 ** (attempt - 1)))
    if jitter is None:
        return delay
    fraction = float(ensure_rng(jitter).uniform(0.5, 1.0))
    return delay * fraction


def _worker_main(
    worker_id: int,
    attempt: int,
    graph,
    method: str,
    n_trials: int,
    generator,
    method_kwargs: Dict,
    faults: Optional[FaultPlan],
    instrument: bool,
    queue,
) -> None:
    """Subprocess entry point: run one trial share, ship the result back.

    An unhandled exception propagates and becomes a non-zero exit code,
    which the coordinator treats exactly like a crash.  With
    ``instrument=True`` the worker records its own metrics and spans and
    ships them alongside the result, so the coordinator can merge them;
    crashed or hung attempts ship nothing, which keeps the merged trial
    counters consistent with the trial-weighted result merge.
    """
    behaviour = (
        faults.worker_behaviour(worker_id, attempt) if faults else "ok"
    )
    if behaviour == "crash":
        os._exit(CRASH_EXIT_CODE)
    if behaviour == "hang":
        time.sleep(HANG_SECONDS)
    from ..core.mpmb import find_mpmb
    from ..core.serialize import result_to_dict

    observer = Observer() if instrument else None
    result = find_mpmb(
        graph, method=method, n_trials=n_trials, rng=generator,
        observer=observer, **method_kwargs,
    )
    payload = {
        "result": result_to_dict(result),
        "metrics": (
            observer.metrics.to_dict() if observer is not None else None
        ),
        "spans": (
            observer.tracer.to_list() if observer is not None else None
        ),
    }
    queue.put(payload)


def run_parallel_trials(
    graph,
    n_trials: int,
    n_workers: int,
    method: str = "os",
    rng: RngLike = None,
    max_attempts: int = 3,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    straggler_timeout: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    sleep: Callable[[float], None] = time.sleep,
    mp_context: Optional[str] = None,
    guarantee_mu: float = 0.05,
    guarantee_delta: float = 0.1,
    block_size: Optional[int] = None,
    observer: Optional[Observer] = None,
    **method_kwargs,
):
    """Run a trial budget across fault-tolerant parallel workers.

    Args:
        graph: The uncertain bipartite network.
        n_trials: Total trial budget, split near-evenly across workers.
        n_workers: Worker process count.
        method: One of :data:`POOLABLE_METHODS` (frequency-based, so
            partial results pool by trial-weighted averaging).
        rng: Base seed/generator; workers get statistically independent
            spawned child streams.  A retried worker reuses its original
            stream, so retries reproduce the same trials.
        max_attempts: Attempts per worker before it is dropped.
        backoff_base: First retry waits this many seconds; subsequent
            retries double it.  Every sleep is scaled by a deterministic
            jitter factor in ``[0.5, 1.0]`` drawn from a stream spawned
            off ``rng``, so simultaneous retries do not synchronise into
            bursts and the same seed replays the same schedule.
        backoff_cap: Upper bound on any single backoff sleep (before
            jitter scaling).
        straggler_timeout: Seconds to wait for a worker before
            terminating it as a straggler; ``None`` waits indefinitely.
        faults: Optional deterministic fault-injection plan.
        sleep: Sleep function (injectable so tests assert backoff
            without waiting).
        mp_context: ``multiprocessing`` start method (``None`` = platform
            default).
        guarantee_mu: ``μ`` for the re-widened guarantee of a degraded
            pool.
        guarantee_delta: ``δ`` for the re-widened guarantee.
        block_size: Shard whole blocks of this many trials across the
            workers (no block straddles two workers) and run each worker
            through the batched kernel layer; ``None`` shards single
            trials and keeps the scalar loops.
        observer: Optional :class:`~repro.observability.Observer`.  When
            given, each worker records its own metrics/spans in-process
            and ships them with its result; the coordinator merges the
            registries (counters sum, so e.g. ``sampling.trials`` equals
            the pooled ``n_trials`` even when workers were dropped) and
            grafts worker spans under ``worker-<id>`` path prefixes.
        **method_kwargs: Forwarded to the method (e.g. ``n_prepare=``).

    Returns:
        The merged :class:`~repro.core.results.MPMBResult`.  When
        workers were dropped it is flagged ``degraded=True`` with
        ``degraded_reason="workers-dropped"`` and a guarantee re-widened
        to the trials actually pooled.  Stats gain ``workers_total``,
        ``workers_dropped`` and ``worker_attempts`` counters.

    Raises:
        ValueError: On non-poolable methods or non-positive budgets.
        WorkerFailureError: If every worker failed permanently.
    """
    if method not in POOLABLE_METHODS:
        raise ConfigurationError(
            f"method {method!r} cannot be pooled across workers; "
            f"expected one of {POOLABLE_METHODS}"
        )
    if max_attempts <= 0:
        raise ConfigurationError(
            f"max_attempts must be positive, got {max_attempts}"
        )
    shares = split_trials(n_trials, n_workers, block_size=block_size)
    if block_size is not None:
        method_kwargs = {**method_kwargs, "block_size": block_size}
    # Lazy imports: this module is part of the runtime package, which the
    # core estimators import — importing core eagerly here would cycle.
    from ..core.results import merge_results
    from ..core.serialize import result_from_dict

    observer = ensure_observer(observer)
    context = multiprocessing.get_context(mp_context)
    # One extra child stream seeds the retry-backoff jitter.  Spawned
    # children are keyed by index, so workers 0..n-1 receive exactly the
    # streams they always did — adding the jitter stream at the end
    # changes no worker's trials.
    streams = spawn_rngs(rng, n_workers + 1)
    jitter_rng = streams[n_workers]
    reports: Dict[int, WorkerReport] = {}
    results: Dict[int, object] = {}
    worker_metrics: Dict[int, Dict] = {}
    worker_spans: Dict[int, List] = {}
    pending: List[tuple] = [
        (worker_id, 1) for worker_id in range(n_workers)
        if shares[worker_id] > 0
    ]

    with observer.span(
        "fan-out", method=method, workers=n_workers, trials=n_trials
    ):
        while pending:
            launched = []
            for worker_id, attempt in pending:
                queue = context.SimpleQueue()
                process = context.Process(
                    target=_worker_main,
                    args=(
                        worker_id, attempt, graph, method,
                        shares[worker_id], streams[worker_id],
                        method_kwargs, faults, observer.enabled, queue,
                    ),
                    daemon=True,
                )
                process.start()
                launched.append((worker_id, attempt, process, queue))

            retry: List[tuple] = []
            round_backoff = 0.0
            for worker_id, attempt, process, queue in launched:
                process.join(straggler_timeout)
                failure: Optional[str] = None
                if process.is_alive():
                    process.terminate()
                    process.join()
                    failure = (
                        f"straggler exceeded {straggler_timeout}s timeout"
                    )
                elif process.exitcode != 0:
                    failure = f"worker exited with code {process.exitcode}"
                elif queue.empty():
                    failure = "worker exited without returning a result"
                else:
                    payload = queue.get()
                    results[worker_id] = result_from_dict(
                        payload["result"], graph
                    )
                    if payload["metrics"] is not None:
                        worker_metrics[worker_id] = payload["metrics"]
                    if payload["spans"] is not None:
                        worker_spans[worker_id] = payload["spans"]
                    reports[worker_id] = WorkerReport(
                        worker_id=worker_id,
                        attempts=attempt,
                        status="ok",
                        n_trials=shares[worker_id],
                    )
                if failure is not None:
                    if attempt >= max_attempts:
                        reports[worker_id] = WorkerReport(
                            worker_id=worker_id,
                            attempts=attempt,
                            status="dropped",
                            n_trials=0,
                            error=failure,
                        )
                    else:
                        retry.append((worker_id, attempt + 1))
                        round_backoff = max(
                            round_backoff,
                            backoff_seconds(
                                attempt, backoff_base, backoff_cap,
                                jitter=jitter_rng,
                            ),
                        )
            if retry and round_backoff > 0.0:
                sleep(round_backoff)
            pending = retry

    dropped = [r for r in reports.values() if r.status == "dropped"]
    if not results:
        detail = "; ".join(
            f"worker {r.worker_id}: {r.error} "
            f"(after {r.attempts} attempts)"
            for r in dropped
        )
        raise WorkerFailureError(
            f"all {n_workers} workers failed permanently: {detail}"
        )

    with observer.span("merge", workers=len(results)):
        merged = reduce(
            merge_results,
            [results[worker_id] for worker_id in sorted(results)],
        )
        for worker_id in sorted(worker_metrics):
            observer.metrics.merge(
                MetricsRegistry.from_dict(worker_metrics[worker_id])
            )
        for worker_id in sorted(worker_spans):
            observer.tracer.merge(
                worker_spans[worker_id], prefix=f"worker-{worker_id}"
            )
    observer.inc("pool.workers.total", n_workers)
    observer.inc("pool.workers.dropped", len(dropped))
    observer.inc(
        "pool.worker.attempts", sum(r.attempts for r in reports.values())
    )
    merged.stats["workers_total"] = float(n_workers)
    merged.stats["workers_dropped"] = float(len(dropped))
    merged.stats["worker_attempts"] = float(
        sum(r.attempts for r in reports.values())
    )
    if dropped:
        merged.degraded = True
        merged.degraded_reason = "workers-dropped"
        merged.target_trials = n_trials
        merged.guarantee = recompute_guarantee(
            merged.n_trials, n_trials,
            mu=guarantee_mu, delta=guarantee_delta,
        )
    return merged
