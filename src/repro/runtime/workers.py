"""Fault-tolerant parallel trial execution.

Butterfly sampling parallelises embarrassingly well (Shi & Shun's
parallel butterfly work makes the same observation for certain graphs):
the frequency-based methods pool across independent trial streams by
trial-weighted averaging (:func:`~repro.core.results.merge_results`).
This module turns that observation into a production worker pool:

* the graph — and, for batched runs, the wedge-CSR index — is published
  **once** into a ``multiprocessing.shared_memory`` segment
  (:mod:`~repro.runtime.shm`); workers are **persistent** processes that
  attach to it at startup and then serve task descriptors over pipes,
  so no task ever pickles a graph and retries re-use warm processes;
* each worker runs its share of the trial budget on an independent
  spawned RNG stream;
* a crashed worker (non-zero exit, missing result) is respawned and
  retried with exponential backoff — deterministically jittered from a
  stream spawned off the run RNG, so retry bursts decorrelate while
  replays stay bit-identical — up to a capped attempt count, with the
  *same* trial stream, so retries are deterministic;
* a straggler that exceeds the timeout is terminated and treated as a
  failed attempt;
* workers that fail permanently are dropped, and the surviving partial
  results merge into a result flagged ``degraded=True`` whose ε-δ
  guarantee is re-widened to the trials actually pooled (the
  Theorem IV.1 bound inverted for the achieved ``N``, as in
  :mod:`~repro.runtime.degradation`).

A :class:`WorkerPool` can outlive one :func:`run_parallel_trials` call:
``repro.service`` caches pools keyed on the registry's graph checksum,
so consecutive requests against the same dataset reuse both the shared
segment and the attached worker processes (``worker.shm.reused``).

Only the frequency-based methods (``mc-vp``, ``os``, ``ols``) are
poolable: their estimates are trial-weighted averages, so pooled
streams obey the same Theorem IV.1 / Lemma V.2 analysis as one stream
of the combined length.  OLS-KL is excluded because Lemma VI.4 sizes
its trial count *per candidate* from that candidate's existence
probability (Eq. 8) — per-worker shares of a dynamic budget do not
average.  Per-worker observability metrics merge under the same policy
(dropped workers contribute nothing; see ``docs/observability.md``).

Failures are injectable through :class:`~repro.runtime.faults.FaultPlan`
so every path above is exercised by deterministic tests.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import reduce
from typing import Any, Callable, Dict, List, Optional, Tuple

import multiprocessing
from multiprocessing import connection as mp_connection

from ..errors import ConfigurationError, WorkerFailureError
from ..observability import (
    MetricsRegistry,
    Observer,
    ensure_observer,
)
from ..sampling.rng import RngLike, ensure_rng, spawn_rngs
from .degradation import recompute_guarantee
from .faults import CRASH_EXIT_CODE, HANG_SECONDS, FaultPlan
from .shm import SharedGraphHandle, publish_graph

#: Methods whose results pool by trial-weighted averaging.
POOLABLE_METHODS = ("mc-vp", "os", "ols")

#: Methods whose batched kernels consume the shared wedge index.
_INDEXED_METHODS = ("mc-vp", "os")

#: Seconds :meth:`WorkerPool.close` waits for a worker to exit cleanly
#: after the shutdown sentinel before terminating it.
_SHUTDOWN_GRACE = 5.0


@dataclass
class WorkerReport:
    """Outcome of one worker across all its attempts.

    Attributes:
        worker_id: 0-based worker index.
        attempts: Attempts consumed (1 = succeeded first try).
        status: ``"ok"`` or ``"dropped"``.
        n_trials: Trials this worker contributed (0 when dropped).
        error: Last failure description (``None`` when it succeeded
            first try).
    """

    worker_id: int
    attempts: int
    status: str
    n_trials: int
    error: Optional[str] = None


def split_trials(
    n_trials: int, n_workers: int, block_size: Optional[int] = None
) -> List[int]:
    """Near-even per-worker trial shares summing to ``n_trials``.

    With ``block_size`` the pool shards *blocks* rather than single
    trials: every worker's share is a whole number of blocks (the one
    remainder block, if any, counts as one), so each worker's batched
    kernel runs full-size blocks and no block straddles two workers.
    Workers assigned zero blocks get zero trials.
    """
    if n_trials <= 0:
        raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
    if n_workers <= 0:
        raise ConfigurationError(f"n_workers must be positive, got {n_workers}")
    if block_size is None:
        base, extra = divmod(n_trials, n_workers)
        return [base + (1 if w < extra else 0) for w in range(n_workers)]
    if block_size <= 0:
        raise ConfigurationError(
            f"block_size must be positive, got {block_size}"
        )
    full_blocks, remainder = divmod(n_trials, block_size)
    units = full_blocks + (1 if remainder else 0)
    base, extra = divmod(units, n_workers)
    unit_shares = [base + (1 if w < extra else 0) for w in range(n_workers)]
    shares = [units_w * block_size for units_w in unit_shares]
    if remainder:
        # The remainder block lives with the last worker that got blocks.
        for w in range(n_workers - 1, -1, -1):
            if shares[w] > 0:
                shares[w] -= block_size - remainder
                break
    return shares


def backoff_seconds(
    attempt: int,
    base: float = 0.05,
    cap: float = 2.0,
    jitter: Optional[RngLike] = None,
) -> float:
    """Exponential backoff before retry ``attempt + 1`` (capped).

    With ``jitter`` (a generator or seed) the capped delay is scaled by
    a uniform draw from ``[0.5, 1.0]`` — "equal jitter".  A fixed
    backoff synchronises every retrying worker after a straggler kill
    into one thundering-herd burst; jitter decorrelates the bursts.
    Drawing from a generator spawned off the run RNG keeps replays
    bit-identical: the same seed produces the same backoff schedule.
    """
    delay = min(cap, base * (2.0 ** (attempt - 1)))
    if jitter is None:
        return delay
    fraction = float(ensure_rng(jitter).uniform(0.5, 1.0))
    return delay * fraction


def _wants_shared_index(method: str, method_kwargs: Dict) -> bool:
    """Whether a task would consume the pool's shared wedge index.

    The index is built with the default ``"degree"`` priority; a caller
    overriding ``priority_kind`` gets a worker-local rebuild instead of
    a silently mismatched shared index.
    """
    return (
        method in _INDEXED_METHODS
        and method_kwargs.get("block_size") is not None
        and method_kwargs.get("priority_kind", "degree") == "degree"
    )


def _persistent_worker_main(
    worker_id: int, conn, handle: SharedGraphHandle
) -> None:
    """Persistent subprocess entry point: attach once, serve tasks.

    Attaches to the shared graph segment, then loops on task
    descriptors from ``conn`` until the ``None`` shutdown sentinel (or
    pipe closure).  Each task runs one trial share and ships the result
    payload back over the same pipe.  An unhandled exception propagates
    and becomes a non-zero exit code, which the coordinator treats
    exactly like a crash; crashed or hung attempts ship nothing, which
    keeps the merged trial counters consistent with the trial-weighted
    result merge.
    """
    from ..core.mpmb import find_mpmb
    from ..core.serialize import result_to_dict
    from .shm import attach_shared_graph

    attachment = attach_shared_graph(handle)
    try:
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            faults: Optional[FaultPlan] = task["faults"]
            behaviour = (
                faults.worker_behaviour(worker_id, task["attempt"])
                if faults else "ok"
            )
            if behaviour == "crash":
                os._exit(CRASH_EXIT_CODE)
            if behaviour == "hang":
                # A real wall-clock stall is the point of the injected
                # "hang" fault; routing it through an injectable clock
                # would defeat the chaos harness.
                time.sleep(HANG_SECONDS)  # repro: noqa[CLK002]
            method_kwargs = dict(task["method_kwargs"])
            if attachment.index is not None and _wants_shared_index(
                task["method"], method_kwargs
            ):
                method_kwargs["wedge_index"] = attachment.index
            observer = Observer() if task["instrument"] else None
            result = find_mpmb(
                attachment.graph, method=task["method"],
                n_trials=task["n_trials"], rng=task["rng"],
                observer=observer, **method_kwargs,
            )
            payload = {
                "result": result_to_dict(result),
                "metrics": (
                    observer.metrics.to_dict()
                    if observer is not None else None
                ),
                "spans": (
                    observer.tracer.to_list()
                    if observer is not None else None
                ),
            }
            conn.send(payload)
    finally:
        attachment.close()


@dataclass
class _PoolWorker:
    """One live worker process and the coordinator end of its pipe."""

    process: Any
    conn: Any


class WorkerPool:
    """Persistent worker processes over one shared-memory graph segment.

    Publishing happens at construction: the graph (and optional wedge
    index) lands in one shared segment, and every worker process
    spawned by :meth:`worker` attaches to it once, then serves task
    descriptors over its pipe until :meth:`close`.  The pool may serve
    many :func:`run_parallel_trials` calls — ``repro.service`` caches
    pools keyed on :attr:`checksum` and tears them down on registry
    reload.

    Args:
        graph: The uncertain bipartite network to publish.
        mp_context: ``multiprocessing`` start method (``None`` =
            platform default).
        wedge_index: Optional prebuilt
            :class:`~repro.kernels.wedge_block.WedgeIndex` to publish
            alongside the graph for batched kernels.
        checksum: Version key recorded on the handle (defaults to
            :func:`~repro.runtime.shm.graph_checksum`).
        observer: Metric sink for the publication counters.
    """

    def __init__(
        self,
        graph,
        mp_context: Optional[str] = None,
        wedge_index: Optional[Any] = None,
        checksum: Optional[str] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self._context = multiprocessing.get_context(mp_context)
        self._publication = publish_graph(
            graph, index=wedge_index, checksum=checksum, observer=observer
        )
        self._workers: Dict[int, _PoolWorker] = {}
        self._closed = False

    @property
    def handle(self) -> SharedGraphHandle:
        """The picklable handle workers attach by."""
        return self._publication.handle

    @property
    def checksum(self) -> str:
        """The published graph's version key."""
        return self._publication.handle.checksum

    def worker(
        self, worker_id: int, observer: Optional[Observer] = None
    ) -> _PoolWorker:
        """A live worker for ``worker_id``, spawning one if needed.

        Workers persist across calls; a worker discarded after a
        failure (or found dead) is respawned here, re-attaching to the
        shared segment (``worker.shm.attached``).
        """
        if self._closed:
            raise ConfigurationError("worker pool is closed")
        entry = self._workers.get(worker_id)
        if entry is not None and entry.process.is_alive():
            return entry
        if entry is not None:
            self.discard(worker_id)
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_persistent_worker_main,
            args=(worker_id, child_conn, self._publication.handle),
            daemon=True,
        )
        process.start()
        child_conn.close()
        ensure_observer(observer).inc("worker.shm.attached")
        entry = _PoolWorker(process=process, conn=parent_conn)
        self._workers[worker_id] = entry
        return entry

    def discard(self, worker_id: int) -> None:
        """Terminate and forget one worker (respawned on next use)."""
        entry = self._workers.pop(worker_id, None)
        if entry is None:
            return
        if entry.process.is_alive():
            entry.process.terminate()
        entry.process.join()
        entry.conn.close()

    def close(self) -> None:
        """Shut workers down and unlink the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for entry in self._workers.values():
            try:
                entry.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for entry in self._workers.values():
            entry.process.join(_SHUTDOWN_GRACE)
            if entry.process.is_alive():
                entry.process.terminate()
                entry.process.join()
            entry.conn.close()
        self._workers.clear()
        self._publication.close()


def run_parallel_trials(
    graph,
    n_trials: int,
    n_workers: int,
    method: str = "os",
    rng: RngLike = None,
    max_attempts: int = 3,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    straggler_timeout: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    sleep: Callable[[float], None] = time.sleep,
    mp_context: Optional[str] = None,
    guarantee_mu: float = 0.05,
    guarantee_delta: float = 0.1,
    block_size: Optional[int] = None,
    observer: Optional[Observer] = None,
    pool: Optional[WorkerPool] = None,
    **method_kwargs,
):
    """Run a trial budget across fault-tolerant parallel workers.

    Args:
        graph: The uncertain bipartite network.
        n_trials: Total trial budget, split near-evenly across workers.
        n_workers: Worker process count.
        method: One of :data:`POOLABLE_METHODS` (frequency-based, so
            partial results pool by trial-weighted averaging).
        rng: Base seed/generator; workers get statistically independent
            spawned child streams.  A retried worker reuses its original
            stream, so retries reproduce the same trials.
        max_attempts: Attempts per worker before it is dropped.
        backoff_base: First retry waits this many seconds; subsequent
            retries double it.  Every sleep is scaled by a deterministic
            jitter factor in ``[0.5, 1.0]`` drawn from a stream spawned
            off ``rng``, so simultaneous retries do not synchronise into
            bursts and the same seed replays the same schedule.
        backoff_cap: Upper bound on any single backoff sleep (before
            jitter scaling).
        straggler_timeout: Seconds to wait for a worker before
            terminating it as a straggler; ``None`` waits indefinitely.
        faults: Optional deterministic fault-injection plan.
        sleep: Sleep function (injectable so tests assert backoff
            without waiting).
        mp_context: ``multiprocessing`` start method (``None`` = platform
            default; ignored when ``pool`` is given).
        guarantee_mu: ``μ`` for the re-widened guarantee of a degraded
            pool.
        guarantee_delta: ``δ`` for the re-widened guarantee.
        block_size: Shard whole blocks of this many trials across the
            workers (no block straddles two workers) and run each worker
            through the batched kernel layer; ``None`` shards single
            trials and keeps the scalar loops.  Batched runs build the
            wedge-CSR index once on the coordinator and publish it into
            the shared segment, so workers skip the per-process build.
        observer: Optional :class:`~repro.observability.Observer`.  When
            given, each worker records its own metrics/spans in-process
            and ships them with its result; the coordinator merges the
            registries (counters sum, so e.g. ``sampling.trials`` equals
            the pooled ``n_trials`` even when workers were dropped) and
            grafts worker spans under ``worker-<id>`` path prefixes.
        pool: Optional pre-built :class:`WorkerPool` over the same
            graph.  The call reuses its shared segment and live worker
            processes (``worker.shm.reused``) and leaves it open for
            the owner to close; without one, a pool is created for this
            call and torn down afterwards.
        **method_kwargs: Forwarded to the method (e.g. ``n_prepare=``).

    Returns:
        The merged :class:`~repro.core.results.MPMBResult`.  When
        workers were dropped it is flagged ``degraded=True`` with
        ``degraded_reason="workers-dropped"`` and a guarantee re-widened
        to the trials actually pooled.  Stats gain ``workers_total``,
        ``workers_dropped`` and ``worker_attempts`` counters.

    Raises:
        ValueError: On non-poolable methods or non-positive budgets.
        WorkerFailureError: If every worker failed permanently.
    """
    if method not in POOLABLE_METHODS:
        raise ConfigurationError(
            f"method {method!r} cannot be pooled across workers; "
            f"expected one of {POOLABLE_METHODS}"
        )
    if max_attempts <= 0:
        raise ConfigurationError(
            f"max_attempts must be positive, got {max_attempts}"
        )
    shares = split_trials(n_trials, n_workers, block_size=block_size)
    if block_size is not None:
        method_kwargs = {**method_kwargs, "block_size": block_size}
    if method_kwargs.get("adaptive") is not None:
        # Each worker races its own shard; δ/n per worker keeps the
        # pooled anytime claim at δ by a union bound.
        # Lazy import: repro.adaptive imports the core estimators,
        # which import this package — eager import would cycle.
        from ..adaptive.racing import resolve_adaptive, split_worker_delta

        adaptive_config = resolve_adaptive(method_kwargs["adaptive"])
        if adaptive_config is None:
            method_kwargs = {**method_kwargs, "adaptive": None}
        else:
            method_kwargs = {
                **method_kwargs,
                "adaptive": split_worker_delta(
                    adaptive_config, len(shares),
                    default_delta=guarantee_delta,
                ),
            }
    # Lazy imports: this module is part of the runtime package, which the
    # core estimators import — importing core eagerly here would cycle.
    from ..core.results import merge_results
    from ..core.serialize import result_from_dict

    observer = ensure_observer(observer)
    owns_pool = pool is None
    if pool is None:
        wedge_index = None
        if _wants_shared_index(method, method_kwargs):
            from ..kernels.wedge_block import build_wedge_index

            with observer.span("wedge-index", shared=True):
                wedge_index = build_wedge_index(graph)
        pool = WorkerPool(
            graph, mp_context=mp_context, wedge_index=wedge_index,
            observer=observer,
        )
    else:
        observer.inc("worker.shm.reused")
        observer.set(
            "worker.shm.bytes", float(pool.handle.total_bytes)
        )
    # One extra child stream seeds the retry-backoff jitter.  Spawned
    # children are keyed by index, so workers 0..n-1 receive exactly the
    # streams they always did — adding the jitter stream at the end
    # changes no worker's trials.
    streams = spawn_rngs(rng, n_workers + 1)
    jitter_rng = streams[n_workers]
    reports: Dict[int, WorkerReport] = {}
    results: Dict[int, object] = {}
    worker_metrics: Dict[int, Dict] = {}
    worker_spans: Dict[int, List] = {}
    pending: List[Tuple[int, int]] = [
        (worker_id, 1) for worker_id in range(n_workers)
        if shares[worker_id] > 0
    ]

    try:
        with observer.span(
            "fan-out", method=method, workers=n_workers, trials=n_trials
        ):
            while pending:
                launched = []
                for worker_id, attempt in pending:
                    entry = pool.worker(worker_id, observer=observer)
                    task = {
                        "attempt": attempt,
                        "method": method,
                        "n_trials": shares[worker_id],
                        "rng": streams[worker_id],
                        "method_kwargs": method_kwargs,
                        "faults": faults,
                        "instrument": observer.enabled,
                    }
                    try:
                        entry.conn.send(task)
                    except (BrokenPipeError, OSError):
                        # Dead pipe: the sentinel wait below sees the
                        # exit and classifies it as a crash.
                        pass
                    launched.append((worker_id, attempt, entry))

                retry: List[Tuple[int, int]] = []
                round_backoff = 0.0
                for worker_id, attempt, entry in launched:
                    failure: Optional[str] = None
                    payload = None
                    ready = mp_connection.wait(
                        [entry.conn, entry.process.sentinel],
                        timeout=straggler_timeout,
                    )
                    if not ready:
                        pool.discard(worker_id)
                        failure = (
                            f"straggler exceeded "
                            f"{straggler_timeout}s timeout"
                        )
                    else:
                        if entry.conn in ready:
                            try:
                                payload = entry.conn.recv()
                            except (EOFError, OSError):
                                payload = None
                        if payload is None:
                            entry.process.join()
                            exitcode = entry.process.exitcode
                            pool.discard(worker_id)
                            if exitcode not in (0, None):
                                failure = (
                                    f"worker exited with code {exitcode}"
                                )
                            else:
                                failure = (
                                    "worker exited without returning "
                                    "a result"
                                )
                    if payload is not None:
                        results[worker_id] = result_from_dict(
                            payload["result"], graph
                        )
                        if payload["metrics"] is not None:
                            worker_metrics[worker_id] = payload["metrics"]
                        if payload["spans"] is not None:
                            worker_spans[worker_id] = payload["spans"]
                        reports[worker_id] = WorkerReport(
                            worker_id=worker_id,
                            attempts=attempt,
                            status="ok",
                            n_trials=shares[worker_id],
                        )
                    if failure is not None:
                        if attempt >= max_attempts:
                            reports[worker_id] = WorkerReport(
                                worker_id=worker_id,
                                attempts=attempt,
                                status="dropped",
                                n_trials=0,
                                error=failure,
                            )
                        else:
                            retry.append((worker_id, attempt + 1))
                            round_backoff = max(
                                round_backoff,
                                backoff_seconds(
                                    attempt, backoff_base, backoff_cap,
                                    jitter=jitter_rng,
                                ),
                            )
                if retry and round_backoff > 0.0:
                    sleep(round_backoff)
                pending = retry
    finally:
        if owns_pool:
            pool.close()

    dropped = [r for r in reports.values() if r.status == "dropped"]
    if not results:
        detail = "; ".join(
            f"worker {r.worker_id}: {r.error} "
            f"(after {r.attempts} attempts)"
            for r in dropped
        )
        raise WorkerFailureError(
            f"all {n_workers} workers failed permanently: {detail}"
        )

    with observer.span("merge", workers=len(results)):
        merged = reduce(
            merge_results,
            [results[worker_id] for worker_id in sorted(results)],
        )
        for worker_id in sorted(worker_metrics):
            observer.metrics.merge(
                MetricsRegistry.from_dict(worker_metrics[worker_id])
            )
        for worker_id in sorted(worker_spans):
            observer.tracer.merge(
                worker_spans[worker_id], prefix=f"worker-{worker_id}"
            )
    observer.inc("pool.workers.total", n_workers)
    observer.inc("pool.workers.dropped", len(dropped))
    observer.inc(
        "pool.worker.attempts", sum(r.attempts for r in reports.values())
    )
    merged.stats["workers_total"] = float(n_workers)
    merged.stats["workers_dropped"] = float(len(dropped))
    merged.stats["worker_attempts"] = float(
        sum(r.attempts for r in reports.values())
    )
    if dropped:
        merged.degraded = True
        merged.degraded_reason = "workers-dropped"
        merged.target_trials = n_trials
        merged.guarantee = recompute_guarantee(
            merged.n_trials, n_trials,
            mu=guarantee_mu, delta=guarantee_delta,
        )
    return merged
