"""Deterministic fault injection for the resilient trial runtime.

Retry, resume, and degradation paths are only trustworthy if they are
exercised, and real crashes are not reproducible.  A :class:`FaultPlan`
describes, ahead of time and deterministically, exactly which failures to
inject: an in-process crash or interrupt before a given trial, checkpoint
writes that fail, and parallel workers that crash or hang on specific
attempts.  The trial engine and the worker pool consult the plan at the
matching decision points, so a test can stage "worker 0 dies once, then
recovers" or "the second checkpoint write hits a full disk" and assert
on the runtime's reaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from ..errors import ReproError

#: Exit code used by injected hard worker crashes (recognisable in logs).
CRASH_EXIT_CODE = 23

#: How long an injected hang sleeps; the pool's straggler timeout is
#: expected to fire long before this.
HANG_SECONDS = 3600.0


class InjectedCrash(ReproError):
    """A simulated hard crash requested by a :class:`FaultPlan`.

    Deliberately *not* caught by the trial engine: it propagates like a
    real crash would, so only state persisted by earlier checkpoints
    survives.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of failures to inject.

    Attributes:
        crash_before_trial: Raise :class:`InjectedCrash` immediately
            before running this 1-based trial (simulates the process
            dying mid-run; periodic checkpoints written earlier remain).
        interrupt_before_trial: Raise :class:`KeyboardInterrupt` before
            this trial (simulates Ctrl-C; the engine degrades
            gracefully).
        checkpoint_failures: 1-based indices of checkpoint *writes* that
            fail with an I/O error (the atomic-write protocol must leave
            the previous snapshot intact).
        worker_crash_attempts: Worker id -> number of leading attempts
            that exit hard with :data:`CRASH_EXIT_CODE` (attempt
            ``worker_crash_attempts[w] + 1`` succeeds).
        worker_hang_attempts: Worker id -> number of leading attempts
            that hang until the pool's straggler timeout terminates
            them.
    """

    crash_before_trial: Optional[int] = None
    interrupt_before_trial: Optional[int] = None
    checkpoint_failures: Tuple[int, ...] = ()
    worker_crash_attempts: Mapping[int, int] = field(default_factory=dict)
    worker_hang_attempts: Mapping[int, int] = field(default_factory=dict)

    def checkpoint_write_should_fail(self, write_index: int) -> bool:
        """Whether the ``write_index``-th checkpoint write must fail."""
        return write_index in self.checkpoint_failures

    def worker_behaviour(self, worker_id: int, attempt: int) -> str:
        """``"crash"``, ``"hang"``, or ``"ok"`` for one worker attempt."""
        if attempt <= self.worker_crash_attempts.get(worker_id, 0):
            return "crash"
        if attempt <= self.worker_hang_attempts.get(worker_id, 0):
            return "hang"
        return "ok"
