"""Deterministic fault injection for the resilient trial runtime.

Retry, resume, and degradation paths are only trustworthy if they are
exercised, and real crashes are not reproducible.  A :class:`FaultPlan`
describes, ahead of time and deterministically, exactly which failures to
inject: an in-process crash or interrupt before a given trial, checkpoint
writes that fail, and parallel workers that crash or hang on specific
attempts.  The trial engine and the worker pool consult the plan at the
matching decision points, so a test can stage "worker 0 dies once, then
recovers" or "the second checkpoint write hits a full disk" and assert
on the runtime's reaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from ..errors import ReproError

#: Exit code used by injected hard worker crashes (recognisable in logs).
CRASH_EXIT_CODE = 23

#: How long an injected hang sleeps; the pool's straggler timeout is
#: expected to fire long before this.
HANG_SECONDS = 3600.0


class InjectedCrash(ReproError):
    """A simulated hard crash requested by a :class:`FaultPlan`.

    Deliberately *not* caught by the trial engine: it propagates like a
    real crash would, so only state persisted by earlier checkpoints
    survives.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of failures to inject.

    Attributes:
        crash_before_trial: Raise :class:`InjectedCrash` immediately
            before running this 1-based trial (simulates the process
            dying mid-run; periodic checkpoints written earlier remain).
        interrupt_before_trial: Raise :class:`KeyboardInterrupt` before
            this trial (simulates Ctrl-C; the engine degrades
            gracefully).
        checkpoint_failures: 1-based indices of checkpoint *writes* that
            fail with an I/O error (the atomic-write protocol must leave
            the previous snapshot intact).
        worker_crash_attempts: Worker id -> number of leading attempts
            that exit hard with :data:`CRASH_EXIT_CODE` (attempt
            ``worker_crash_attempts[w] + 1`` succeeds).
        worker_hang_attempts: Worker id -> number of leading attempts
            that hang until the pool's straggler timeout terminates
            them.
    """

    crash_before_trial: Optional[int] = None
    interrupt_before_trial: Optional[int] = None
    checkpoint_failures: Tuple[int, ...] = ()
    worker_crash_attempts: Mapping[int, int] = field(default_factory=dict)
    worker_hang_attempts: Mapping[int, int] = field(default_factory=dict)

    def checkpoint_write_should_fail(self, write_index: int) -> bool:
        """Whether the ``write_index``-th checkpoint write must fail."""
        return write_index in self.checkpoint_failures

    def worker_behaviour(self, worker_id: int, attempt: int) -> str:
        """``"crash"``, ``"hang"``, or ``"ok"`` for one worker attempt."""
        if attempt <= self.worker_crash_attempts.get(worker_id, 0):
            return "crash"
        if attempt <= self.worker_hang_attempts.get(worker_id, 0):
            return "hang"
        return "ok"


@dataclass(frozen=True)
class ServiceFaultPlan:
    """A deterministic failure schedule for the query-service layer.

    Extends the in-process :class:`FaultPlan` (which stays the engine's
    and worker pool's vocabulary) with the failure modes only a
    long-lived service sees: slow or failing graph loads, artifacts that
    arrive corrupted, and engine/worker faults injected into every
    admitted request.  The scripted chaos scenarios in
    :mod:`repro.service.chaos` are built from these plans, so
    ``tests/test_service_chaos.py`` can assert on the service's exact
    reaction without real crashes, disks, or clocks.

    Attributes:
        load_delay_seconds: Dataset name -> artificial delay (via the
            registry's injectable ``sleep``) before the graph builds —
            simulates a slow store or cold cache.
        load_failures: Dataset name -> number of leading load attempts
            that raise (the attempt after that succeeds); simulates
            transient storage faults.
        corrupt_artifacts: Dataset names whose loaded artifact fails
            checksum validation — the registry must *quarantine* the
            entry (serve an explicit error for it) rather than crash.
        request_faults: An engine/worker :class:`FaultPlan` applied to
            every admitted request's execution (worker crashes, hangs,
            checkpoint write failures, in-process crashes).
    """

    load_delay_seconds: Mapping[str, float] = field(default_factory=dict)
    load_failures: Mapping[str, int] = field(default_factory=dict)
    corrupt_artifacts: Tuple[str, ...] = ()
    request_faults: Optional[FaultPlan] = None

    def load_delay(self, dataset: str) -> float:
        """Seconds of injected delay before ``dataset`` loads."""
        return float(self.load_delay_seconds.get(dataset, 0.0))

    def load_should_fail(self, dataset: str, attempt: int) -> bool:
        """Whether the 1-based load ``attempt`` for ``dataset`` fails."""
        return attempt <= int(self.load_failures.get(dataset, 0))

    def artifact_is_corrupt(self, dataset: str) -> bool:
        """Whether ``dataset``'s artifact must fail checksum validation."""
        return dataset in self.corrupt_artifacts
