"""Execution policy for the resilient trial runtime.

A :class:`RuntimePolicy` bundles everything the trial engine needs to
know beyond the algorithm itself: where to checkpoint and how often,
where to resume from, the wall-clock budget, the ε-δ targets
(``guarantee_mu``, ``guarantee_delta``) used when a degraded run's
guarantee is re-widened by inverting the Theorem IV.1 bound
``N ≥ (1/μ)·4·ln(2/δ)/ε²`` for the achieved ``N``, and an optional
fault-injection plan.  Estimators accept a policy via their ``runtime=`` keyword; with no
policy they run exactly as before (one uninterruptible in-process loop,
apart from graceful Ctrl-C handling).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from ..errors import ConfigurationError
from .faults import FaultPlan


class Deadline:
    """A wall-clock budget, started at construction.

    The clock is injectable so tests can drive deadline expiry
    deterministically instead of sleeping.
    """

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds <= 0.0:
            raise ConfigurationError(f"seconds must be positive, got {seconds}")
        self.seconds = float(seconds)
        self._clock = clock
        self._started = clock()

    @property
    def elapsed(self) -> float:
        """Seconds since construction."""
        return self._clock() - self._started

    @property
    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.seconds - self.elapsed

    @property
    def expired(self) -> bool:
        """Whether the budget is exhausted."""
        return self.remaining <= 0.0


@dataclass
class RuntimePolicy:
    """Resilience knobs for one trial-loop execution.

    Attributes:
        checkpoint_path: Where to write atomic JSON snapshots; ``None``
            disables checkpointing.
        checkpoint_every: Trials (or candidates, for OLS-KL) between
            periodic snapshots; a final snapshot is always written when
            the loop ends, degrades, or is interrupted.
        resume_from: Snapshot to restore before running.  A missing file
            starts a fresh run (so the same command line works for the
            first run and every rerun); a snapshot from a different
            method, graph, or trial target raises
            :class:`~repro.errors.CheckpointError`.
        timeout_seconds: Wall-clock budget.  On expiry the loop stops
            cleanly and the result is flagged ``degraded=True`` with its
            ε re-widened to the trials actually completed.
        guarantee_mu: Target probability ``μ`` used when re-widening the
            Theorem IV.1 guarantee of a degraded run (paper default
            0.05).
        guarantee_delta: Failure probability ``δ`` of the re-widened
            guarantee (paper default 0.1).
        on_checkpoint_error: ``"raise"`` (default) propagates
            :class:`~repro.errors.CheckpointError` on a failed snapshot
            write; ``"continue"`` logs it into the loop report and keeps
            sampling.
        faults: Optional deterministic fault-injection plan.
        clock: Monotonic clock used for the deadline (injectable for
            tests).
    """

    checkpoint_path: Optional[Union[str, Path]] = None
    checkpoint_every: int = 1_000
    resume_from: Optional[Union[str, Path]] = None
    timeout_seconds: Optional[float] = None
    guarantee_mu: float = 0.05
    guarantee_delta: float = 0.1
    on_checkpoint_error: str = "raise"
    faults: Optional[FaultPlan] = None
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.checkpoint_every <= 0:
            raise ConfigurationError(
                f"checkpoint_every must be positive, "
                f"got {self.checkpoint_every}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0.0:
            raise ConfigurationError(
                f"timeout_seconds must be positive, "
                f"got {self.timeout_seconds}"
            )
        if self.on_checkpoint_error not in ("raise", "continue"):
            raise ConfigurationError(
                "on_checkpoint_error must be 'raise' or 'continue', "
                f"got {self.on_checkpoint_error!r}"
            )

    def make_deadline(self) -> Optional[Deadline]:
        """The run's :class:`Deadline` (``None`` without a timeout)."""
        if self.timeout_seconds is None:
            return None
        return Deadline(self.timeout_seconds, clock=self.clock)
