"""Shared-memory graph/wedge-index publication for the worker pool.

The worker pool used to ship the whole graph to every worker process as
pickled ``Process`` arguments — per attempt, per retry.  This module
replaces that with a publish-once/attach-many protocol built on
:mod:`multiprocessing.shared_memory`:

* :func:`publish_graph` copies the graph's edge arrays — and, for
  batched runs, the wedge index's CSR arrays — into **one** shared
  segment and returns a tiny picklable :class:`SharedGraphHandle`
  (segment name + per-array shapes/dtypes/offsets + the registry
  checksum).  The handle is the *only* object that crosses the process
  seam; the MPS001/PKL001 analyzer rules enforce that no raw buffer or
  array ever does.
* :func:`attach_shared_graph` runs inside a worker: it opens the
  segment by name and reconstructs the graph (and wedge index) as
  zero-copy read-only NumPy views over the shared mapping, so a
  persistent worker pays the attachment cost once and every task after
  that touches the same physical pages as its siblings.

Segments are versioned by :func:`graph_checksum` (the same SHA-256 the
service registry validates artifacts with), which is how
``repro.service`` decides a cached pool may be reused across requests
and must be torn down on reload.  Instrumentation:
``worker.shm.published`` / ``worker.shm.attached`` /
``worker.shm.reused`` counters and the ``worker.shm.bytes`` gauge (see
``docs/observability.md``).
"""

from __future__ import annotations

import hashlib
import pickle
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..graph import UncertainBipartiteGraph
from ..observability import Observer, ensure_observer

#: Byte alignment of every array inside the segment (cache-line sized,
#: and a multiple of every element size we store).
_ALIGN = 64

#: Graph arrays published for every pool.
GRAPH_ARRAYS = ("edge_left", "edge_right", "weights", "probs")

#: Wedge-index arrays published when the pool serves batched kernels.
INDEX_ARRAYS = (
    "priority", "wedge_mid", "wedge_e1", "wedge_e2", "wedge_weight",
    "group_start", "group_x", "group_z", "scan_order", "scan_bound",
    "scan_wedge", "scan_start", "scan_e1", "scan_e2", "scan_w",
)

#: Reserved in-segment name of the pickled metadata blob (labels, graph
#: name, wedge-index scalars) — data that is not array-shaped but still
#: belongs inside the segment rather than in the handle.
_META = "__meta__"

#: One array inside the segment: (name, shape, dtype string, offset).
ArraySpec = Tuple[str, Tuple[int, ...], str, int]


def graph_checksum(graph: UncertainBipartiteGraph) -> str:
    """SHA-256 over the graph's edge arrays and vertex labels.

    A stable content hash of everything the estimators consume: edge
    endpoints, weights, probabilities, and both label tuples.  The
    service registry validates artifacts against it and the worker pool
    versions shared segments with it, so "same checksum" means "same
    bytes in shared memory".
    """
    digest = hashlib.sha256()
    for array in (
        graph.edge_left, graph.edge_right, graph.weights, graph.probs
    ):
        digest.update(array.tobytes())
    for labels in (graph.left_labels, graph.right_labels):
        digest.update(repr(labels).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable description of one published segment.

    This is the only object allowed across the worker process seam:
    segment *name* plus per-array shapes/dtypes/offsets — never the
    arrays or the buffer itself (a raw buffer does not pickle, and
    shipping array payloads would defeat the sharing).

    Attributes:
        segment: The ``shared_memory`` segment name to attach by.
        specs: Per-array ``(name, shape, dtype, offset)`` layout.
        checksum: :func:`graph_checksum` of the published graph — the
            version key the service pool cache compares.
        total_bytes: Segment size (the ``worker.shm.bytes`` gauge).
        has_index: Whether the segment also carries a wedge index.
    """

    segment: str
    specs: Tuple[ArraySpec, ...]
    checksum: str
    total_bytes: int
    has_index: bool


def _cleanup_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink one owned segment, tolerating repeats."""
    try:
        shm.close()
    except (BufferError, OSError):  # pragma: no cover - defensive
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - defensive
        pass


class SharedGraphPublication:
    """Coordinator-side ownership of one published segment.

    Owns the segment's lifetime: :meth:`close` (or garbage collection,
    via ``weakref.finalize``) closes and unlinks it.  Workers never
    unlink — they only attach and close.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, handle: SharedGraphHandle
    ) -> None:
        self._shm = shm
        self.handle = handle
        self._finalizer = weakref.finalize(self, _cleanup_segment, shm)

    def close(self) -> None:
        """Unlink the segment (idempotent)."""
        if self._finalizer.detach() is not None:
            _cleanup_segment(self._shm)


def publish_graph(
    graph: UncertainBipartiteGraph,
    index: Optional[Any] = None,
    checksum: Optional[str] = None,
    observer: Optional[Observer] = None,
) -> SharedGraphPublication:
    """Publish a graph (and optional wedge index) into one shared segment.

    Args:
        graph: The backbone graph whose edge arrays workers will share.
        index: Optional :class:`~repro.kernels.wedge_block.WedgeIndex`
            to co-publish for batched kernels.
        checksum: Version key for the handle; defaults to
            :func:`graph_checksum` (pass the registry's recorded
            checksum to skip rehashing).
        observer: Metric sink for ``worker.shm.published`` /
            ``worker.shm.bytes``.
    """
    observer = ensure_observer(observer)
    arrays: Dict[str, np.ndarray] = {
        name: np.ascontiguousarray(getattr(graph, name))
        for name in GRAPH_ARRAYS
    }
    index_meta: Optional[Dict[str, Any]] = None
    if index is not None:
        for name in INDEX_ARRAYS:
            arrays[f"index.{name}"] = np.ascontiguousarray(
                getattr(index, name)
            )
        index_meta = {
            "priority_kind": index.priority_kind,
            "chunks": [list(chunk) for chunk in index.chunks],
        }
    meta = {
        "name": graph.name,
        "left_labels": list(graph.left_labels),
        "right_labels": list(graph.right_labels),
        "index": index_meta,
    }
    arrays[_META] = np.frombuffer(pickle.dumps(meta), dtype=np.uint8)

    specs = []
    offset = 0
    for name, array in arrays.items():
        offset = -(-offset // _ALIGN) * _ALIGN
        specs.append((name, tuple(array.shape), array.dtype.str, offset))
        offset += array.nbytes
    total_bytes = max(offset, 1)
    shm = shared_memory.SharedMemory(create=True, size=total_bytes)
    try:
        for (name, shape, dtype, start), array in zip(
            specs, arrays.values()
        ):
            view = np.ndarray(
                shape, dtype=dtype, buffer=shm.buf, offset=start
            )
            view[...] = array
            del view
        handle = SharedGraphHandle(
            segment=shm.name,
            specs=tuple(specs),
            checksum=checksum or graph_checksum(graph),
            total_bytes=total_bytes,
            has_index=index is not None,
        )
        observer.inc("worker.shm.published")
        observer.set("worker.shm.bytes", float(total_bytes))
        return SharedGraphPublication(shm, handle)
    except BaseException:
        _cleanup_segment(shm)
        raise


class SharedGraphAttachment:
    """Worker-side view of one published segment.

    Reconstructs the graph — and, when published, the wedge index — as
    read-only zero-copy views over the shared mapping.  Keep the
    attachment alive for as long as the graph is used; :meth:`close`
    releases the worker's mapping (never unlinking the segment, which
    the coordinator owns).
    """

    def __init__(self, handle: SharedGraphHandle) -> None:
        self._shm = shared_memory.SharedMemory(name=handle.segment)
        try:
            views: Dict[str, np.ndarray] = {}
            for name, shape, dtype, offset in handle.specs:
                view = np.ndarray(
                    shape, dtype=dtype,
                    buffer=self._shm.buf, offset=offset,
                )
                view.flags.writeable = False
                views[name] = view
            meta = pickle.loads(views[_META].tobytes())
            self.graph = UncertainBipartiteGraph(
                meta["left_labels"],
                meta["right_labels"],
                views["edge_left"],
                views["edge_right"],
                views["weights"],
                views["probs"],
                name=meta["name"],
            )
            self.index: Optional[Any] = None
            if handle.has_index:
                # Imported here: repro.kernels pulls in the runtime
                # package (the blocked loops ride the runtime engine),
                # so a module level import would cycle during package
                # initialisation.
                from ..kernels.wedge_block import WedgeIndex

                index_meta = meta["index"]
                self.index = WedgeIndex(
                    priority_kind=index_meta["priority_kind"],
                    chunks=tuple(
                        (int(lo), int(hi))
                        for lo, hi in index_meta["chunks"]
                    ),
                    **{
                        name: views[f"index.{name}"]
                        for name in INDEX_ARRAYS
                        if name != "priority"
                    },
                    priority=views["index.priority"],
                )
        except BaseException:
            # A stale handle (wrong specs, truncated segment, garbled
            # metadata) must not leak this worker's mapping: views are
            # droppable, the attachment never existed.
            del views
            self._shm.close()
            raise

    def close(self) -> None:
        """Release this worker's mapping of the segment."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - views still referenced
            pass


def attach_shared_graph(handle: SharedGraphHandle) -> SharedGraphAttachment:
    """Attach to a published segment (the worker side of the seam)."""
    return SharedGraphAttachment(handle)
