"""Checkpointable winner-frequency loop shared by MC-VP and OS.

Both direct sampling methods estimate ``P(B)`` as the frequency with
which ``B`` wins a sampled world's maximum-weight set — the estimator
whose trial budget Theorem IV.1 sizes (``N ≥ (1/μ)·4 ln(2/δ)/ε²``; the
unbiasedness argument is Lemma IV.2's expectation identity, restated
for OS by Lemma V.2).  Both methods therefore share the same outer-loop
state: winner counts keyed by canonical butterfly key, the butterflies
themselves, the method's instrumentation counters, optional convergence
traces, and the :class:`~repro.worlds.sampler.WorldSampler` whose RNG
stream drives the trials.  :class:`WinnerCountLoop` packages that state
behind the engine's checkpointable-loop contract, so both methods
inherit checkpoint/resume, deadlines, and graceful interruption from
:func:`~repro.runtime.engine.execute_trial_loop` without duplicating
the bookkeeping.

Butterflies are snapshotted by canonical key only: the graph is part of
a resumed run's inputs, so each butterfly is rebuilt (with its weight and
edge indices) from its four vertex indices on restore.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from ..butterfly import Butterfly, ButterflyKey
from ..butterfly.model import make_butterfly
from ..errors import CheckpointError
from ..graph import UncertainBipartiteGraph
from ..observability import Observer, ensure_observer
from ..sampling.convergence import ConvergenceTrace, checkpoint_schedule

#: One trial returns the butterflies of this trial's maximum-weight set.
WinnerTrialFn = Callable[[], Iterable[Butterfly]]

#: Histogram bucket edges for the per-trial winner-set size (``|S_MB|``
#: is 0 or a small count on real networks; ties inflate it on grids).
WINNER_BUCKET_EDGES = (0.0, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0)


class WinnerCountLoop:
    """Winner-frequency trial loop with snapshot/restore support."""

    def __init__(
        self,
        graph: UncertainBipartiteGraph,
        sampler,
        trial_fn: WinnerTrialFn,
        n_target: int,
        track: Optional[Iterable[ButterflyKey]] = None,
        checkpoints: int = 40,
        stats: Optional[Dict[str, float]] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        """
        Args:
            graph: The analysed graph (used to rebuild butterflies on
                restore).
            sampler: The :class:`~repro.worlds.sampler.WorldSampler`
                whose stream position is part of every snapshot.
            trial_fn: Zero-argument callable running one trial and
                returning its winners.
            n_target: Target trial count (fixes the trace schedule).
            track: Butterfly keys to trace for convergence plots.
            checkpoints: Number of evenly spaced trace checkpoints.
            stats: Method counters dict, shared *by reference* with the
                trial function and restored in place on resume.
            observer: Optional observer; when given, each trial's
                winner-set size feeds the ``trial.winners`` histogram.
        """
        self.graph = graph
        self.sampler = sampler
        self._trial_fn = trial_fn
        self.counts: Dict[ButterflyKey, int] = {}
        self.butterflies: Dict[ButterflyKey, Butterfly] = {}
        self.stats: Dict[str, float] = stats if stats is not None else {}
        self._track = list(track) if track is not None else []
        self.traces = {
            key: ConvergenceTrace(label=str(key)) for key in self._track
        }
        self._schedule = set(checkpoint_schedule(n_target, checkpoints))
        self._winner_sizes = ensure_observer(observer).metrics.histogram(
            "trial.winners", WINNER_BUCKET_EDGES
        )

    # ------------------------------------------------------------------
    # Engine contract
    # ------------------------------------------------------------------

    def run_trial(self, trial: int) -> None:
        self.record_winners(trial, self._trial_fn())

    def record_winners(
        self, trial: int, winners: Iterable[Butterfly]
    ) -> None:
        """Fold one trial's winner set into the counters and traces.

        Exposed separately from :meth:`run_trial` so the batched block
        driver (:mod:`repro.kernels.frequency_block`) can feed trials
        whose worlds came from one shared mask matrix while keeping the
        counting, histogram, and trace bookkeeping in a single place.
        """
        n_winners = 0
        for butterfly in winners:
            n_winners += 1
            self.butterflies.setdefault(butterfly.key, butterfly)
            self.counts[butterfly.key] = self.counts.get(butterfly.key, 0) + 1
        self._winner_sizes.observe(n_winners)
        if self.traces and trial in self._schedule:
            for key, trace in self.traces.items():
                trace.record(trial, self.counts.get(key, 0) / trial)

    def state_payload(self, completed: int) -> Dict:
        return {
            "counts": [
                [list(key), count] for key, count in self.counts.items()
            ],
            "stats": {key: float(v) for key, v in self.stats.items()},
            "traces": {
                "|".join(map(str, key)): [
                    [n, value] for n, value in trace.checkpoints
                ]
                for key, trace in self.traces.items()
            },
            "sampler": self.sampler.state_payload(),
        }

    def restore_state(self, payload: Dict) -> None:
        self.counts.clear()
        self.butterflies.clear()
        for raw_key, count in payload["counts"]:
            key = tuple(int(part) for part in raw_key)
            butterfly = make_butterfly(self.graph, *key)
            if butterfly is None:
                raise CheckpointError(
                    f"checkpointed butterfly {key} does not exist in "
                    f"graph {self.graph.name!r}"
                )
            self.counts[key] = int(count)
            self.butterflies[key] = butterfly
        self.stats.clear()
        self.stats.update(
            {key: float(v) for key, v in payload["stats"].items()}
        )
        for key, trace in self.traces.items():
            recorded = payload["traces"].get("|".join(map(str, key)), [])
            trace.checkpoints = [
                (int(n), float(value)) for n, value in recorded
            ]
        self.sampler.restore_state(payload["sampler"])

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def probabilities(self, completed: int) -> Dict[ButterflyKey, float]:
        """Winner frequencies over the trials actually completed."""
        if completed <= 0:
            return {}
        return {
            key: count / completed for key, count in self.counts.items()
        }
