"""Resilient trial-execution runtime (checkpointing, deadlines, workers).

The paper's trial budgets (Theorem IV.1, Lemma V.2, Eq. 8) routinely
reach 10^4-10^5+ sampled worlds, which makes the sampling loop itself an
operational concern: a crash at trial 95 000 of 100 000 must not lose
the run, a wall-clock overrun must degrade gracefully instead of lying
about accuracy, and parallel workers must survive crashes and
stragglers.  This package provides that machinery, shared by all four
sampling estimators:

* :func:`~repro.runtime.engine.execute_trial_loop` — the one resilient
  outer loop (resume, periodic atomic checkpoints, deadline, Ctrl-C).
* :mod:`~repro.runtime.checkpoint` — atomic JSON snapshot I/O.
* :class:`~repro.runtime.policy.RuntimePolicy` /
  :class:`~repro.runtime.policy.Deadline` — execution knobs.
* :mod:`~repro.runtime.degradation` — re-widened ε-δ guarantees for
  partial runs.
* :func:`~repro.runtime.workers.run_parallel_trials` /
  :class:`~repro.runtime.workers.WorkerPool` — fault-tolerant
  multiprocessing trial pool with retry, backoff, and straggler
  handling, built on persistent workers attached to a shared-memory
  graph segment (:mod:`~repro.runtime.shm`).
* :mod:`~repro.runtime.faults` — deterministic fault injection, so all
  of the above is testable.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_KIND,
    checkpoint_document,
    read_checkpoint,
    validate_checkpoint,
    write_checkpoint,
)
from .degradation import Guarantee, recompute_guarantee
from .engine import (
    CheckpointableLoop,
    LoopInterrupt,
    LoopReport,
    execute_trial_loop,
    require_complete,
)
from .faults import CRASH_EXIT_CODE, FaultPlan, InjectedCrash
from .frequency import WinnerCountLoop
from .policy import Deadline, RuntimePolicy
from .shm import (
    SharedGraphHandle,
    attach_shared_graph,
    graph_checksum,
    publish_graph,
)
from .workers import (
    POOLABLE_METHODS,
    WorkerPool,
    WorkerReport,
    backoff_seconds,
    run_parallel_trials,
    split_trials,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_KIND",
    "checkpoint_document",
    "read_checkpoint",
    "validate_checkpoint",
    "write_checkpoint",
    "Guarantee",
    "recompute_guarantee",
    "CheckpointableLoop",
    "LoopInterrupt",
    "LoopReport",
    "execute_trial_loop",
    "require_complete",
    "CRASH_EXIT_CODE",
    "FaultPlan",
    "InjectedCrash",
    "WinnerCountLoop",
    "Deadline",
    "RuntimePolicy",
    "SharedGraphHandle",
    "attach_shared_graph",
    "graph_checksum",
    "publish_graph",
    "POOLABLE_METHODS",
    "WorkerPool",
    "WorkerReport",
    "backoff_seconds",
    "run_parallel_trials",
    "split_trials",
]
