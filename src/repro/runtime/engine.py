"""The resilient trial-execution engine.

:func:`execute_trial_loop` is the one outer loop every sampling estimator
routes through.  The estimator supplies a *checkpointable loop* — an
object that runs one trial (or, for OLS-KL, one candidate), snapshots its
counters + RNG stream into a JSON payload, and restores itself from such
a payload — and the engine supplies everything resilience needs around
it: resume from a snapshot, periodic atomic checkpoints, wall-clock
deadlines with clean early stop, graceful Ctrl-C handling, deterministic
fault injection, and observability (the ``engine.*`` metrics and the
``trial-loop`` span).

Paper context: the trial budgets this loop executes are the ones the
theory sizes — ``N ≥ (1/μ)·4 ln(2/δ)/ε²`` direct Monte-Carlo trials for
the frequency methods (Theorem IV.1; Lemma V.2 restates it for OS), and
the per-candidate Karp-Luby budgets of Lemma VI.4 / Eq. (8) when the
loop unit is a candidate.  A run that stops early therefore certifies a
*weaker* guarantee, which :mod:`repro.runtime.degradation` re-widens.

The contract that makes checkpoint/resume bit-for-bit deterministic:
``restore_state(state_payload())`` must reproduce the loop's counters
*and* its RNG stream position exactly, so a resumed run consumes the
same random numbers an uninterrupted run would have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Sequence

from ..errors import ConfigurationError, TrialBudgetExceeded
from ..observability import Observer, ensure_observer
from .checkpoint import (
    checkpoint_document,
    read_checkpoint,
    validate_checkpoint,
    write_checkpoint,
)
from .faults import InjectedCrash
from .policy import Deadline, RuntimePolicy


class CheckpointableLoop(Protocol):
    """What an estimator's inner loop must expose to the engine."""

    def run_trial(self, trial: int) -> None:
        """Execute the 1-based ``trial`` and fold it into the counters."""

    def state_payload(self, completed: int) -> Dict:
        """JSON-serialisable snapshot after ``completed`` trials."""

    def restore_state(self, payload: Dict) -> None:
        """Restore counters and RNG stream from a snapshot payload."""


class LoopInterrupt(Exception):
    """Raised by a loop body to stop the engine early with a reason.

    Used by adapters that detect deadline expiry *inside* one trial unit
    (e.g. OLS-KL mid-candidate) — the engine records the reason and
    finishes exactly like its own between-trial deadline check.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class LoopReport:
    """What happened to one engine execution.

    Attributes:
        completed: Trials completed in total (including resumed ones).
        target: The trial budget the run was sized for.
        resumed_from: Trials restored from a snapshot (0 for fresh runs).
        stop_reason: ``None`` when the full budget ran; ``"deadline"``
            or ``"interrupted"`` when the loop degraded.
        checkpoints_written: Snapshot writes performed (including the
            final one).
        checkpoint_errors: Failed snapshot writes that were tolerated
            (only with ``on_checkpoint_error="continue"``).
        trials_completed: Monte-Carlo trials completed, which differs
            from ``completed`` only for block-granular loops (where one
            engine unit is a whole block).  Defaults to ``completed``.
        trials_target: Trial budget behind ``target`` units; defaults
            to ``target``.
    """

    completed: int
    target: int
    resumed_from: int = 0
    stop_reason: Optional[str] = None
    checkpoints_written: int = 0
    checkpoint_errors: int = 0
    trials_completed: Optional[int] = None
    trials_target: Optional[int] = None

    @property
    def n_trials(self) -> int:
        """Trials completed, whatever the engine unit was."""
        return (
            self.completed
            if self.trials_completed is None
            else self.trials_completed
        )

    @property
    def n_trials_target(self) -> int:
        """Trial budget, whatever the engine unit was."""
        return (
            self.target if self.trials_target is None else self.trials_target
        )

    @property
    def degraded(self) -> bool:
        """Whether the loop stopped before its target budget."""
        return self.stop_reason is not None


def execute_trial_loop(
    *,
    method: str,
    graph_name: str,
    n_target: int,
    loop: CheckpointableLoop,
    policy: Optional[RuntimePolicy] = None,
    deadline: Optional[Deadline] = None,
    unit: str = "trial",
    unit_lengths: Optional[Sequence[int]] = None,
    observer: Optional[Observer] = None,
) -> LoopReport:
    """Run ``loop`` for up to ``n_target`` trials under ``policy``.

    Args:
        method: Method identifier stamped into checkpoints (``"os"``,
            ``"ols-kl"``, ...).
        graph_name: Graph identifier stamped into checkpoints.
        n_target: The trial budget.
        loop: The estimator's checkpointable inner loop.
        policy: Resilience knobs; ``None`` means a plain in-process loop
            (still with graceful Ctrl-C handling).
        deadline: Pre-built deadline to honour — pass when the loop body
            also needs it (OLS-KL checks mid-candidate); by default one
            is built from ``policy.timeout_seconds``.
        unit: Human/checkpoint name of one loop iteration (``"trial"``,
            ``"candidate"`` or ``"block"``).
        unit_lengths: For block-granular loops: how many Monte-Carlo
            trials each of the ``n_target`` engine units contains.  The
            engine then counts real trials in the ``engine.trials.*``
            metrics and reports ``trials_completed``/``trials_target``
            so degraded runs normalise over trials, not blocks.
        observer: Optional :class:`~repro.observability.Observer`; when
            given, the loop runs inside a ``trial-loop`` span and keeps
            the ``engine.trials.completed`` / ``engine.trials.resumed``
            counters and checkpoint counters up to date.

    Returns:
        A :class:`LoopReport`; ``report.degraded`` distinguishes early
        stops from complete runs.

    Raises:
        ValueError: If ``n_target`` is not positive.
        CheckpointError: On resume/validation failures, or write
            failures when ``on_checkpoint_error="raise"``.
        InjectedCrash: When the fault plan schedules a simulated crash.
    """
    if n_target <= 0:
        raise ConfigurationError(f"n_trials must be positive, got {n_target}")
    if unit_lengths is not None and len(unit_lengths) != n_target:
        raise ConfigurationError(
            f"unit_lengths covers {len(unit_lengths)} units but the "
            f"target is {n_target}"
        )
    policy = policy or RuntimePolicy()
    faults = policy.faults
    observer = ensure_observer(observer)
    trials_completed = observer.metrics.counter("engine.trials.completed")

    resumed_from = 0
    if policy.resume_from is not None:
        document = read_checkpoint(policy.resume_from)
        if document is not None:
            validate_checkpoint(
                document,
                method=method,
                graph_name=graph_name,
                unit=unit,
                target=n_target,
            )
            loop.restore_state(document["state"])
            resumed_from = min(int(document["completed"]), n_target)

    if deadline is None:
        deadline = policy.make_deadline()

    report = LoopReport(
        completed=resumed_from, target=n_target, resumed_from=resumed_from
    )
    if unit_lengths is not None:
        report.trials_target = int(sum(unit_lengths))
        report.trials_completed = int(sum(unit_lengths[:resumed_from]))

    def _snapshot() -> None:
        index = report.checkpoints_written + report.checkpoint_errors + 1
        fail_hook = None
        if faults is not None and faults.checkpoint_write_should_fail(index):
            def fail_hook() -> None:
                raise OSError("injected checkpoint write failure")  # repro: noqa[EXC001]
        document = checkpoint_document(
            method=method,
            graph_name=graph_name,
            unit=unit,
            target=n_target,
            completed=report.completed,
            state=loop.state_payload(report.completed),
        )
        try:
            write_checkpoint(
                policy.checkpoint_path, document, fail_hook=fail_hook
            )
        except Exception:
            report.checkpoint_errors += 1
            observer.inc("engine.checkpoints.errors")
            if policy.on_checkpoint_error == "raise":
                raise
        else:
            report.checkpoints_written += 1
            observer.inc("engine.checkpoints.written")

    if resumed_from:
        observer.inc(
            "engine.trials.resumed",
            resumed_from
            if unit_lengths is None
            else int(sum(unit_lengths[:resumed_from])),
        )
    with observer.span(
        "trial-loop", method=method, unit=unit, target=n_target
    ) as loop_span:
        try:
            for trial in range(resumed_from + 1, n_target + 1):
                if deadline is not None and deadline.expired:
                    report.stop_reason = "deadline"
                    break
                if faults is not None:
                    if faults.interrupt_before_trial == trial:
                        raise KeyboardInterrupt
                    if faults.crash_before_trial == trial:
                        raise InjectedCrash(
                            f"injected crash before {unit} {trial} "
                            f"of {method}"
                        )
                loop.run_trial(trial)
                report.completed = trial
                if unit_lengths is None:
                    trials_completed.inc()
                else:
                    trials_completed.inc(int(unit_lengths[trial - 1]))
                    report.trials_completed = (
                        (report.trials_completed or 0)
                        + int(unit_lengths[trial - 1])
                    )
                if (
                    policy.checkpoint_path is not None
                    and report.completed < n_target
                    and report.completed % policy.checkpoint_every == 0
                ):
                    _snapshot()
        except KeyboardInterrupt:
            report.stop_reason = "interrupted"
        except LoopInterrupt as interrupt:
            report.stop_reason = interrupt.reason
        if loop_span is not None and report.stop_reason is not None:
            loop_span.meta["stop_reason"] = report.stop_reason

    if policy.checkpoint_path is not None and (
        report.completed > resumed_from or report.checkpoints_written == 0
    ):
        _snapshot()
    return report


def require_complete(report: LoopReport) -> LoopReport:
    """Raise unless the full budget ran (for strict certification runs).

    Raises:
        TrialBudgetExceeded: If the loop degraded.
    """
    if report.degraded:
        raise TrialBudgetExceeded(
            f"trial loop stopped after {report.completed} of "
            f"{report.target} trials ({report.stop_reason})"
        )
    return report
