"""Atomic JSON checkpoint I/O for the trial runtime.

A checkpoint is one JSON document: identifying metadata (method, graph,
trial target) plus an estimator-specific ``state`` payload containing the
winner/frequency counters, candidate keys, serialized RNG stream
position, and convergence traces.  Writes go to a temporary sibling file
that is fsynced and then atomically renamed over the target, so a crash
mid-write can never corrupt the previous snapshot — at worst the run
resumes from one checkpoint earlier.

Checkpoints exist because the paper's trial budgets are long: the
Theorem IV.1 bound ``N ≥ (1/μ)·4·ln(2/δ)/ε²`` reaches ``10^5+`` trials
for small ``μ``, and Lemma VI.4's per-candidate Karp-Luby budgets
(Eq. 8) multiply that across ``|C_MB|`` candidates.  Because the
``state`` payload restores the RNG stream position exactly, a resumed
run consumes the same random numbers an uninterrupted run would have,
so resuming never perturbs the ε-δ analysis those bounds certify.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from ..errors import CheckpointError

#: Version of the checkpoint document layout.
CHECKPOINT_FORMAT = 1

#: Discriminator so arbitrary JSON files are rejected early.
CHECKPOINT_KIND = "repro-runtime-checkpoint"


def checkpoint_document(
    *,
    method: str,
    graph_name: str,
    unit: str,
    target: int,
    completed: int,
    state: Dict,
) -> Dict:
    """Assemble a full checkpoint document around a state payload."""
    return {
        "format": CHECKPOINT_FORMAT,
        "kind": CHECKPOINT_KIND,
        "method": method,
        "graph_name": graph_name,
        "unit": unit,
        "target": int(target),
        "completed": int(completed),
        "state": state,
    }


def write_checkpoint(
    path: Union[str, Path],
    document: Dict,
    fail_hook: Optional[Callable[[], None]] = None,
) -> None:
    """Atomically persist a checkpoint document.

    Args:
        path: Target file; a ``.tmp`` sibling is used for staging.
        document: JSON-serialisable checkpoint document.
        fail_hook: Fault-injection hook invoked after staging begins —
            an :class:`OSError` it raises is reported exactly like a
            real write failure (and must leave any previous snapshot at
            ``path`` intact).

    Raises:
        CheckpointError: On any I/O failure; the temporary file is
            removed and the previous snapshot, if any, is untouched.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        if fail_hook is not None:
            fail_hook()
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise CheckpointError(
            f"failed to write checkpoint {path}: {exc}"
        ) from exc


def read_checkpoint(path: Union[str, Path]) -> Optional[Dict]:
    """Load a checkpoint document, or ``None`` when the file is absent.

    Raises:
        CheckpointError: If the file exists but is not a valid
            checkpoint (unreadable, malformed JSON, wrong kind, or an
            unsupported format version).
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"failed to read checkpoint {path}: {exc}"
        ) from exc
    if not isinstance(document, dict) or (
        document.get("kind") != CHECKPOINT_KIND
    ):
        raise CheckpointError(
            f"{path} is not a repro runtime checkpoint"
        )
    if document.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format {document.get('format')!r} "
            f"in {path}; expected {CHECKPOINT_FORMAT}"
        )
    return document


def validate_checkpoint(
    document: Dict,
    *,
    method: str,
    graph_name: str,
    unit: str,
    target: int,
) -> None:
    """Ensure a snapshot belongs to the run being resumed.

    Raises:
        CheckpointError: On any mismatch, naming the differing field.
    """
    expected = {
        "method": method,
        "graph_name": graph_name,
        "unit": unit,
        "target": int(target),
    }
    for key, want in expected.items():
        have = document.get(key)
        if have != want:
            raise CheckpointError(
                f"checkpoint {key} mismatch: snapshot has {have!r}, "
                f"this run expects {want!r}"
            )
