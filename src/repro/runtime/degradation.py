"""Graceful-degradation semantics: re-widened ε-δ guarantees.

When a run stops early — deadline expiry, Ctrl-C, or dropped workers —
the estimates over the trials actually completed are still unbiased, but
the (ε, δ) guarantee the *target* budget was sized for (Theorem IV.1 /
Lemma VI.4) no longer holds.  Silently reporting the target guarantee
would overstate accuracy, so the runtime inverts the Hoeffding-style
bound for the achieved trial count: the result keeps ``δ`` and ``μ`` and
reports the wider ``ε`` that the completed trials actually certify,
packaged as a :class:`Guarantee` on the degraded
:class:`~repro.core.results.MPMBResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..sampling.bounds import achievable_epsilon


@dataclass(frozen=True)
class Guarantee:
    """The ε-δ accuracy statement a finished (or degraded) run certifies.

    Attributes:
        mu: Smallest target probability ``μ`` the statement covers.
        epsilon: Relative error ``ε`` — for a degraded run this is
            *re-widened*: recomputed from the trials actually completed
            rather than the target budget.
        delta: Failure probability ``δ``.
        achieved_trials: Trials actually completed.
        target_trials: Trials the run was sized for.
        realized_trials: For anytime (racing) runs, the trials actually
            consumed by the certified early stop; ``None`` for fixed
            budgets.
        eliminated: For anytime runs, how many candidates the racing
            rule eliminated before stopping; ``None`` otherwise.
    """

    mu: float
    epsilon: float
    delta: float
    achieved_trials: int
    target_trials: int
    realized_trials: Optional[int] = None
    eliminated: Optional[int] = None

    @property
    def complete(self) -> bool:
        """Whether the full target budget was spent."""
        return self.achieved_trials >= self.target_trials

    def to_dict(self) -> Dict:
        """JSON-serialisable form (infinity encoded as ``None``).

        The anytime keys are emitted only when set, so fixed-budget
        payloads round-trip byte-identically to their pre-anytime form.
        """
        payload: Dict = {
            "mu": self.mu,
            "epsilon": None if math.isinf(self.epsilon) else self.epsilon,
            "delta": self.delta,
            "achieved_trials": self.achieved_trials,
            "target_trials": self.target_trials,
        }
        if self.realized_trials is not None:
            payload["realized_trials"] = self.realized_trials
        if self.eliminated is not None:
            payload["eliminated"] = self.eliminated
        return payload

    @staticmethod
    def from_dict(payload: Dict) -> "Guarantee":
        """Rebuild a guarantee serialized by :meth:`to_dict`.

        Tolerates payloads written before the anytime keys existed.
        """
        epsilon = payload.get("epsilon")
        realized = payload.get("realized_trials")
        eliminated = payload.get("eliminated")
        return Guarantee(
            mu=float(payload["mu"]),
            epsilon=float("inf") if epsilon is None else float(epsilon),
            delta=float(payload["delta"]),
            achieved_trials=int(payload["achieved_trials"]),
            target_trials=int(payload["target_trials"]),
            realized_trials=None if realized is None else int(realized),
            eliminated=None if eliminated is None else int(eliminated),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        eps = "inf" if math.isinf(self.epsilon) else f"{self.epsilon:.4f}"
        return (
            f"ε={eps} at δ={self.delta:g} for μ≥{self.mu:g} "
            f"({self.achieved_trials}/{self.target_trials} trials)"
        )


def recompute_guarantee(
    achieved_trials: int,
    target_trials: int,
    mu: float = 0.05,
    delta: float = 0.1,
) -> Guarantee:
    """Invert Theorem IV.1 for the trials actually completed.

    ``N ≥ (1/μ)·4 ln(2/δ)/ε²`` solved for ε gives the relative error a
    frequency estimate over ``achieved_trials`` trials certifies with
    probability ``1-δ``.  Zero completed trials certify nothing
    (``ε = ∞``).
    """
    if achieved_trials < 0:
        raise ConfigurationError(
            f"achieved_trials must be non-negative, got {achieved_trials}"
        )
    if achieved_trials == 0:
        epsilon = float("inf")
    else:
        epsilon = achievable_epsilon(mu, achieved_trials, delta)
    return Guarantee(
        mu=mu,
        epsilon=epsilon,
        delta=delta,
        achieved_trials=achieved_trials,
        target_trials=target_trials,
    )
