"""File discovery and rule orchestration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .baseline import (
    load_baseline,
    load_baseline_records,
    split_baselined,
    stale_entries,
)
from .findings import Finding
from .program import Program
from .program.symbols import (
    CACHE_BASENAME,
    ModuleSummary,
    cache_entry,
    file_digest,
    load_cache,
    save_cache,
    summarize_module,
)
from .registry import FileRule, ProgramRule, ProjectRule, instantiate
from .reporters import AnalysisResult
from .source import NOQA_PATTERN, SourceFile, parse_source

#: Directory names never descended into during discovery.
SKIP_DIRECTORIES = frozenset({
    "__pycache__", ".git", ".venv", "venv", "node_modules",
    "build", "dist",
})

#: Rule id stamped on files that fail to parse (or to read).
PARSE_RULE = "PARSE001"


@dataclass
class AnalysisConfig:
    """One analyzer invocation's inputs.

    Attributes:
        root: Repository root; findings are reported relative to it.
        paths: Files/directories to analyze (relative paths resolve
            against ``root``).  Empty means the default ``src/repro``.
        select: Restrict to these rule ids (None = all).
        ignore: Drop these rule ids after selection (None = none);
            exit-code semantics are unchanged — an ignored rule simply
            never runs.
        baseline_path: Baseline file (None = no baseline).
        project_rules: Run the repo-level rules (docs consistency,
            catalog sync) in addition to the per-file rules.
        strict: Fail on warnings as well as errors.
        program_rules: Run the whole-program rules (call graph + data
            flow).  ``None`` follows ``project_rules`` — fixture runs
            that disable one usually mean both.
        changed: Diff mode — repo-relative path → changed line
            numbers.  File rules run only on changed files, findings
            are filtered to changed lines, and unchanged files load
            their summaries from the cache instead of being parsed.
        use_cache: Read/write the module-summary cache
            (``.repro-analysis-cache.json`` under ``root``).
        cache_path: Override the cache location (tests).
    """

    root: Path
    paths: List[Path] = field(default_factory=list)
    select: Optional[List[str]] = None
    ignore: Optional[List[str]] = None
    baseline_path: Optional[Path] = None
    project_rules: bool = True
    strict: bool = False
    program_rules: Optional[bool] = None
    changed: Optional[Dict[str, Set[int]]] = None
    use_cache: bool = False
    cache_path: Optional[Path] = None


def discover_root(start: Optional[Path] = None) -> Path:
    """The nearest ancestor containing ``pyproject.toml`` (else CWD)."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return current


def discover_files(root: Path, paths: List[Path]) -> List[Path]:
    """All ``.py`` files under ``paths`` (sorted, pruned, deduped)."""
    targets = paths or [root / "src" / "repro"]
    files: List[Path] = []
    for target in targets:
        resolved = (
            target if target.is_absolute() else root / target
        ).resolve()
        if resolved.is_file():
            files.append(resolved)
            continue
        for candidate in sorted(resolved.rglob("*.py")):
            parts = set(candidate.relative_to(resolved).parts[:-1])
            if parts & SKIP_DIRECTORIES:
                continue
            if any(part.endswith(".egg-info") for part in parts):
                continue
            files.append(candidate)
    unique: List[Path] = []
    seen = set()
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_error(rel: str, message: str, line: int = 0) -> Finding:
    return Finding(
        path=rel,
        line=line,
        rule=PARSE_RULE,
        message=message,
        severity="error",
    )


class _LineOracle:
    """Lazy access to source lines for noqa checks and fingerprints.

    Program-rule findings can land in files the run never parsed
    (their summaries came from the cache), so line text is read from
    disk on demand and memoised per file.
    """

    def __init__(self, root: Path, sources: Dict[str, SourceFile]):
        self.root = root
        self.sources = sources
        self._lines: Dict[str, List[str]] = {}

    def line_text(self, rel: str, line: int) -> str:
        source = self.sources.get(rel)
        if source is not None:
            return source.line_text(line)
        lines = self._lines.get(rel)
        if lines is None:
            try:
                lines = (self.root / rel).read_text(
                    encoding="utf-8"
                ).splitlines()
            except (OSError, UnicodeDecodeError):
                lines = []
            self._lines[rel] = lines
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""

    def is_suppressed(self, rule: str, rel: str, line: int) -> bool:
        match = NOQA_PATTERN.search(self.line_text(rel, line))
        if match is None:
            return False
        rules = match.group("rules")
        if rules is None:
            return True
        return rule in {
            part.strip() for part in rules.split(",") if part.strip()
        }


def _load_or_parse(
    config: AnalysisConfig,
    files: List[Path],
) -> Tuple[
    Dict[str, SourceFile],
    Dict[str, ModuleSummary],
    Dict[str, Dict[str, object]],
    List[Finding],
    int,
]:
    """Parse what must be parsed; serve the rest from the cache.

    Returns (sources by rel path, summaries by rel path, refreshed
    cache entries, parse findings, files parsed).  In diff mode only
    changed files are parsed — unchanged files contribute a cached
    summary (or a freshly computed one on a cold cache) but no
    :class:`SourceFile`, since no file rule will run on them.
    """
    cache_path = config.cache_path or (config.root / CACHE_BASENAME)
    cache = load_cache(cache_path) if config.use_cache else {}
    entries: Dict[str, Dict[str, object]] = {}
    sources: Dict[str, SourceFile] = {}
    summaries: Dict[str, ModuleSummary] = {}
    parse_findings: List[Finding] = []
    parsed = 0

    for path in files:
        rel = _relative(path, config.root)
        wants_source = (
            config.changed is None or rel in config.changed
        )
        entry = cache.get(rel)
        if not wants_source and entry is not None:
            summary = _cached_summary(path, rel, entry)
            if summary is not None:
                summaries[rel] = summary
                entries[rel] = entry
                continue
        try:
            data = path.read_bytes()
            text = data.decode("utf-8")
        except (OSError, UnicodeDecodeError) as error:
            parse_findings.append(_parse_error(
                rel, f"file is unreadable: {error}"
            ))
            continue
        try:
            source = parse_source(rel, text)
        except SyntaxError as error:
            parse_findings.append(_parse_error(
                rel,
                f"file does not parse: {error.msg}",
                line=error.lineno or 0,
            ))
            continue
        parsed += 1
        if wants_source:
            sources[rel] = source
        digest = file_digest(data)
        if (
            entry is not None
            and entry.get("sha") == digest
        ):
            summary = _entry_summary(entry)
        else:
            summary = None
        if summary is None:
            summary = summarize_module(rel, source.tree)
        summaries[rel] = summary
        try:
            stat = path.stat()
            entries[rel] = cache_entry(
                stat.st_size, stat.st_mtime_ns, digest, summary
            )
        except OSError:
            pass

    if config.use_cache:
        save_cache(cache_path, entries)
    return sources, summaries, entries, parse_findings, parsed


def _entry_summary(
    entry: Dict[str, object]
) -> Optional[ModuleSummary]:
    summary_data = entry.get("summary")
    if not isinstance(summary_data, dict):
        return None
    try:
        return ModuleSummary.from_dict(summary_data)
    except (KeyError, TypeError, ValueError):
        return None


def _cached_summary(
    path: Path, rel: str, entry: Dict[str, object]
) -> Optional[ModuleSummary]:
    """The cached summary for ``path`` if the entry is still fresh."""
    try:
        stat = path.stat()
    except OSError:
        return None
    if (
        entry.get("size") == stat.st_size
        and entry.get("mtime_ns") == stat.st_mtime_ns
    ):
        return _entry_summary(entry)
    try:
        digest = file_digest(path.read_bytes())
    except OSError:
        return None
    if entry.get("sha") != digest:
        return None
    return _entry_summary(entry)


def run_analysis(config: AnalysisConfig) -> AnalysisResult:
    """Run every selected rule and return the filtered result.

    Findings pass through three filters, in order: inline
    ``repro: noqa`` suppressions (counted, never reported), the diff
    filter when ``config.changed`` is set (only findings on changed
    lines survive), then the baseline (grandfathered findings are
    reported separately and do not fail).
    """
    rules = instantiate(config.select, ignore=config.ignore)
    file_rules = [r for r in rules if isinstance(r, FileRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    program_rules = [r for r in rules if isinstance(r, ProgramRule)]
    run_program = (
        config.program_rules
        if config.program_rules is not None
        else config.project_rules
    ) and bool(program_rules)

    files = discover_files(config.root, config.paths)
    sources, summaries, _entries, raw, parsed = _load_or_parse(
        config, files
    )
    oracle = _LineOracle(config.root, sources)
    suppressed = 0

    for rel in sorted(sources):
        source = sources[rel]
        for rule in file_rules:
            for finding in rule.check(source):
                if source.is_suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    raw.append(finding)

    if run_program:
        program = Program(summaries.values(), root=config.root)
        for rule in program_rules:
            for finding in rule.check_program(program):
                if oracle.is_suppressed(
                    finding.rule, finding.path, finding.line
                ):
                    suppressed += 1
                    continue
                if not finding.line_text:
                    finding = replace(
                        finding,
                        line_text=oracle.line_text(
                            finding.path, finding.line
                        ),
                    )
                raw.append(finding)

    if config.project_rules:
        for rule in project_rules:
            raw.extend(rule.check_project(config.root))

    if config.changed is not None:
        raw = [
            finding for finding in raw
            if finding.path in config.changed and (
                finding.line == 0
                or finding.line in config.changed[finding.path]
            )
        ]

    baseline = (
        load_baseline(config.baseline_path)
        if config.baseline_path is not None else {}
    )
    fresh, grandfathered = split_baselined(raw, baseline)

    stale: List[Dict[str, object]] = []
    if (
        config.baseline_path is not None
        and config.changed is None
        and not config.paths
    ):
        stale = stale_entries(
            load_baseline_records(config.baseline_path), raw
        )

    return AnalysisResult(
        findings=fresh,
        grandfathered=grandfathered,
        suppressed=suppressed,
        files_analyzed=len(files),
        files_parsed=parsed,
        rules_run=[rule.id for rule in rules],
        stale_baseline=stale,
    )
