"""File discovery and rule orchestration."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from .baseline import load_baseline, split_baselined
from .findings import Finding
from .registry import FileRule, ProjectRule, instantiate
from .reporters import AnalysisResult
from .source import parse_source

#: Directory names never descended into during discovery.
SKIP_DIRECTORIES = frozenset({
    "__pycache__", ".git", ".venv", "venv", "node_modules",
    "build", "dist",
})

#: Rule id stamped on files that fail to parse.
PARSE_RULE = "PARSE001"


@dataclass
class AnalysisConfig:
    """One analyzer invocation's inputs.

    Attributes:
        root: Repository root; findings are reported relative to it.
        paths: Files/directories to analyze (relative paths resolve
            against ``root``).  Empty means the default ``src/repro``.
        select: Restrict to these rule ids (None = all).
        baseline_path: Baseline file (None = no baseline).
        project_rules: Run the repo-level rules (docs consistency,
            catalog sync) in addition to the per-file rules.
        strict: Fail on warnings as well as errors.
    """

    root: Path
    paths: List[Path] = field(default_factory=list)
    select: Optional[List[str]] = None
    baseline_path: Optional[Path] = None
    project_rules: bool = True
    strict: bool = False


def discover_root(start: Optional[Path] = None) -> Path:
    """The nearest ancestor containing ``pyproject.toml`` (else CWD)."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return current


def discover_files(root: Path, paths: List[Path]) -> List[Path]:
    """All ``.py`` files under ``paths`` (sorted, pruned, deduped)."""
    targets = paths or [root / "src" / "repro"]
    files: List[Path] = []
    for target in targets:
        resolved = (
            target if target.is_absolute() else root / target
        ).resolve()
        if resolved.is_file():
            files.append(resolved)
            continue
        for candidate in sorted(resolved.rglob("*.py")):
            parts = set(candidate.relative_to(resolved).parts[:-1])
            if parts & SKIP_DIRECTORIES:
                continue
            if any(part.endswith(".egg-info") for part in parts):
                continue
            files.append(candidate)
    unique: List[Path] = []
    seen = set()
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_analysis(config: AnalysisConfig) -> AnalysisResult:
    """Run every selected rule and return the filtered result.

    Findings pass through two filters, in order: inline ``repro: noqa``
    suppressions (counted, never reported), then the baseline
    (grandfathered findings are reported separately and do not fail).
    """
    rules = instantiate(config.select)
    file_rules = [r for r in rules if isinstance(r, FileRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    raw: List[Finding] = []
    suppressed = 0
    files = discover_files(config.root, config.paths)
    sources = []
    for path in files:
        rel = _relative(path, config.root)
        try:
            source = parse_source(
                rel, path.read_text(encoding="utf-8")
            )
        except SyntaxError as error:
            raw.append(Finding(
                path=rel,
                line=error.lineno or 0,
                rule=PARSE_RULE,
                message=f"file does not parse: {error.msg}",
                severity="error",
            ))
            continue
        sources.append(source)

    for source in sources:
        for rule in file_rules:
            for finding in rule.check(source):
                if source.is_suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    raw.append(finding)

    if config.project_rules:
        for rule in project_rules:
            raw.extend(rule.check_project(config.root))

    baseline = (
        load_baseline(config.baseline_path)
        if config.baseline_path is not None else {}
    )
    fresh, grandfathered = split_baselined(raw, baseline)

    return AnalysisResult(
        findings=fresh,
        grandfathered=grandfathered,
        suppressed=suppressed,
        files_analyzed=len(files),
        rules_run=[rule.id for rule in rules],
    )
