"""Parsed source files and the AST helpers the rules share.

One :class:`SourceFile` is parsed once and handed to every file rule;
the helpers here centralise the import-alias resolution and scope walk
that several rules need, so each rule stays a small, testable unit.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: Inline suppression: ``# repro: noqa`` or ``# repro: noqa[RNG001,MET001]``.
NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)


@dataclass
class SourceFile:
    """One parsed Python file under analysis.

    Attributes:
        path: Repo-root-relative POSIX path.
        text: Full source text.
        tree: Parsed module AST.
        lines: Source split into lines (index 0 = line 1).
    """

    path: str
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.text.splitlines()

    def line_text(self, line: int) -> str:
        """The source text of 1-based ``line`` ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def noqa_rules(self, line: int) -> Optional[Set[str]]:
        """Suppressions on ``line``: a rule-id set, or empty set for all.

        Returns ``None`` when the line carries no ``repro: noqa``
        comment; an empty set means the bare form (suppress every rule).
        """
        match = NOQA_PATTERN.search(self.line_text(line))
        if match is None:
            return None
        rules = match.group("rules")
        if rules is None:
            return set()
        return {part.strip() for part in rules.split(",") if part.strip()}

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is noqa-suppressed on ``line``."""
        rules = self.noqa_rules(line)
        if rules is None:
            return False
        return not rules or rule in rules


def parse_source(path: str, text: str) -> SourceFile:
    """Parse ``text`` into a :class:`SourceFile` (raises SyntaxError)."""
    return SourceFile(path=path, text=text, tree=ast.parse(text))


def dotted_name(node: ast.expr) -> Optional[str]:
    """The textual dotted path of a Name/Attribute chain, if it is one.

    ``np.random.default_rng`` → ``"np.random.default_rng"``; returns
    ``None`` for chains rooted in calls or subscripts.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name → imported module path, from ``import`` statements.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``import numpy.random`` → ``{"numpy": "numpy"}`` (attribute chains
    through the root name resolve naturally).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname is not None:
                    aliases[name.asname] = name.name
                else:
                    aliases[name.name.split(".", 1)[0]] = (
                        name.name.split(".", 1)[0]
                    )
    return aliases


def from_imports(tree: ast.Module) -> Dict[str, Tuple[str, str]]:
    """Local name → (source module, original name), from-imports only.

    Relative imports keep their leading dots (``from ..errors import X``
    → ``{"X": ("..errors", "X")}``) so rules can match on suffixes.
    """
    imports: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = ("." * node.level) + (node.module or "")
            for name in node.names:
                imports[name.asname or name.name] = (module, name.name)
    return imports


def resolved_call_path(
    call: ast.Call,
    aliases: Dict[str, str],
    froms: Dict[str, Tuple[str, str]],
) -> Optional[str]:
    """The call's dotted path with import aliases normalised.

    ``np.random.default_rng(...)`` with ``import numpy as np`` resolves
    to ``"numpy.random.default_rng"``; a bare call of a from-imported
    name resolves to ``"<module>.<name>"``.
    """
    path = dotted_name(call.func)
    if path is None:
        return None
    head, _, rest = path.partition(".")
    if head in froms:
        module, original = froms[head]
        base = f"{module.lstrip('.')}.{original}".lstrip(".")
        return f"{base}.{rest}" if rest else base
    if head in aliases:
        return f"{aliases[head]}.{rest}" if rest else aliases[head]
    return path


def nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined *inside* other functions (closures)."""
    nested: Set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_fn = isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
            if is_fn and inside_function:
                nested.add(child.name)  # type: ignore[attr-defined]
            visit(child, inside_function or is_fn)

    visit(tree, False)
    return nested


def enclosing_public_function(
    stack: List[ast.AST],
) -> Optional[str]:
    """Name of the top-level function/method a node stack sits in.

    Returns ``None`` for module-level code.  The *top-level* def wins:
    a private helper nested inside a public function still reports the
    public function.
    """
    for node in stack:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node.name
    return None


def walk_with_stack(tree: ast.Module):
    """Yield ``(node, ancestors)`` pairs, ancestors outermost-first."""
    stack: List[ast.AST] = []

    def visit(node: ast.AST):
        yield node, list(stack)
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    yield from visit(tree)
