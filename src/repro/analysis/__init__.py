"""AST-based invariant linter for the reproduction's whole-program
properties.

The test suite cannot see the invariants this package guards:
checkpoint/resume is bit-identical only if every stochastic call routes
through the seeded substrate (RNG001), the worker pool only survives
the spawn start method if module-level callables cross the process
boundary (MPS001), merged metric series only aggregate if names stay
canonical (MET001), and so on.  Each is a *whole-program* property —
one stray call site anywhere re-breaks it — so each is enforced as a
static-analysis rule that fails CI the moment a PR reintroduces a
violation.

Run it::

    python -m repro.analysis              # whole repo, all rules
    python -m repro.analysis --list-rules
    python tools/lint.py                  # same CLI, no PYTHONPATH

Suppress one finding inline with ``# repro: noqa[RULE]``; grandfather
existing findings with ``--write-baseline``.  The full rule catalog,
the suppression/baseline workflow, and the how-to-add-a-rule guide
live in ``docs/static-analysis.md``.
"""

from .baseline import (
    load_baseline,
    load_baseline_records,
    prune_baseline,
    split_baselined,
    stale_entries,
    write_baseline,
)
from .findings import Finding
from .program import Program
from .registry import (
    RULES,
    FileRule,
    ProgramRule,
    ProjectRule,
    Rule,
    register,
)
from .reporters import AnalysisResult, render_json, render_text
from .runner import (
    AnalysisConfig,
    discover_files,
    discover_root,
    run_analysis,
)
from .sarif import render_sarif
from .source import SourceFile, parse_source

# Importing the rule modules populates the registry.
from . import rules as _rules  # noqa: F401
from .program import program_rules as _program_rules  # noqa: F401
from .program import protocol_rules as _protocol_rules  # noqa: F401
from .program import concurrency as _concurrency_rules  # noqa: F401

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "Finding",
    "FileRule",
    "Program",
    "ProgramRule",
    "ProjectRule",
    "Rule",
    "RULES",
    "SourceFile",
    "discover_files",
    "discover_root",
    "load_baseline",
    "load_baseline_records",
    "parse_source",
    "prune_baseline",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "run_analysis",
    "split_baselined",
    "stale_entries",
    "write_baseline",
]
