"""Span-based autofixes for mechanically-correctable findings.

``--fix`` handles the two violation classes whose rewrite is
provably behavior-preserving:

* RNG001 — a bare generator construction (``np.random.default_rng(x)``,
  ``numpy.random.RandomState(x)``) becomes ``ensure_rng(x)``, which
  returns a ``numpy.random.Generator`` for exactly those inputs;
* EXC001 — a boundary ``raise ValueError(...)`` becomes
  ``raise ConfigurationError(...)``; ``ConfigurationError`` subclasses
  ``ValueError``, so existing callers keep catching it.

Fixes are *span replacements* computed from AST extents
(``end_lineno``/``end_col_offset``), applied in reverse source order so
earlier spans stay valid, with overlapping spans dropped rather than
guessed at.  Each fixed file also gets the import it now needs,
inserted after the last top-level import.  Anything the engine cannot
prove out stays a finding — ``--fix`` never silences, it only repairs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .findings import Finding
from .source import module_aliases, from_imports

#: numpy.random constructors rewritable to the substrate coercion.
_RNG_REWRITABLE = frozenset({"default_rng", "RandomState"})

#: Import line added when an RNG construction is rewritten.
_RNG_IMPORT = "from repro.sampling.rng import ensure_rng"

#: Import line added when a boundary raise is rewritten.
_ERRORS_IMPORT = "from repro.errors import ConfigurationError"


@dataclass(frozen=True)
class Patch:
    """One span replacement (1-based lines, 0-based columns)."""

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str


@dataclass
class FileFixes:
    """Every repair planned for one file."""

    path: str
    patches: List[Patch] = field(default_factory=list)
    imports: List[str] = field(default_factory=list)


def _span(node: ast.expr, replacement: str) -> Optional[Patch]:
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    return Patch(
        start_line=node.lineno,
        start_col=node.col_offset,
        end_line=end_line,
        end_col=end_col,
        replacement=replacement,
    )


def _resolved_func(
    node: ast.Call,
    aliases: Dict[str, str],
    froms: Dict[str, Tuple[str, str]],
) -> Optional[str]:
    parts: List[str] = []
    target: ast.expr = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if not isinstance(target, ast.Name):
        return None
    head = target.id
    if head in froms:
        module, original = froms[head]
        parts.append(f"{module}.{original}")
    else:
        parts.append(aliases.get(head, head))
    return ".".join(reversed(parts))


def _rng_patch(
    tree: ast.Module,
    line: int,
    aliases: Dict[str, str],
    froms: Dict[str, Tuple[str, str]],
) -> Optional[Tuple[Patch, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or node.lineno != line:
            continue
        resolved = _resolved_func(node, aliases, froms)
        if resolved is None or not resolved.startswith(
            "numpy.random."
        ):
            continue
        tail = resolved.rsplit(".", 1)[-1]
        if tail not in _RNG_REWRITABLE:
            continue
        patch = _span(node.func, "ensure_rng")
        if patch is not None:
            return patch, _RNG_IMPORT
    return None


def _raise_patch(
    tree: ast.Module, line: int
) -> Optional[Tuple[Patch, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.lineno != line:
            continue
        exc = node.exc
        if not isinstance(exc, ast.Call):
            continue
        if not (
            isinstance(exc.func, ast.Name)
            and exc.func.id == "ValueError"
        ):
            continue
        patch = _span(exc.func, "ConfigurationError")
        if patch is not None:
            return patch, _ERRORS_IMPORT
    return None


def generate_fixes(
    root: Path, findings: List[Finding]
) -> Dict[str, FileFixes]:
    """Plan repairs for the fixable subset of ``findings``."""
    fixes: Dict[str, FileFixes] = {}
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        if finding.rule in ("RNG001", "EXC001"):
            by_path.setdefault(finding.path, []).append(finding)
    for path, path_findings in sorted(by_path.items()):
        target = root / path
        try:
            text = target.read_text(encoding="utf-8")
            tree = ast.parse(text)
        except (OSError, SyntaxError, UnicodeDecodeError):
            continue
        aliases = module_aliases(tree)
        froms = from_imports(tree)
        planned = FileFixes(path=path)
        for finding in path_findings:
            if finding.rule == "RNG001":
                repair = _rng_patch(
                    tree, finding.line, aliases, froms
                )
            else:
                repair = _raise_patch(tree, finding.line)
            if repair is None:
                continue
            patch, import_line = repair
            planned.patches.append(patch)
            if import_line not in planned.imports:
                planned.imports.append(import_line)
        if planned.patches:
            fixes[path] = planned
    return fixes


def _offsets(lines: List[str]) -> List[int]:
    offsets = [0]
    for line in lines:
        offsets.append(offsets[-1] + len(line))
    return offsets


def _apply_patches(text: str, patches: List[Patch]) -> str:
    lines = text.splitlines(keepends=True)
    offsets = _offsets(lines)

    def absolute(line: int, col: int) -> int:
        return offsets[min(line, len(lines)) - 1] + col

    ordered = sorted(
        patches,
        key=lambda p: (p.start_line, p.start_col),
        reverse=True,
    )
    applied_from = len(text) + 1
    for patch in ordered:
        start = absolute(patch.start_line, patch.start_col)
        end = absolute(patch.end_line, patch.end_col)
        if end > applied_from or start > end:
            continue  # overlapping or inverted span: skip, never guess
        text = text[:start] + patch.replacement + text[end:]
        applied_from = start
    return text


def _needs_import(tree: ast.Module, import_line: str) -> bool:
    bound = import_line.rsplit(" ", 1)[-1]
    for node in tree.body:
        if isinstance(node, ast.ImportFrom):
            for name in node.names:
                if (name.asname or name.name) == bound:
                    return False
    return True


def _insertion_line(tree: ast.Module) -> int:
    """1-based line *after* which new imports go."""
    last = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last = max(last, getattr(node, "end_lineno", node.lineno))
    if last:
        return last
    if (
        tree.body
        and isinstance(tree.body[0], ast.Expr)
        and isinstance(tree.body[0].value, ast.Constant)
        and isinstance(tree.body[0].value.value, str)
    ):
        return getattr(
            tree.body[0], "end_lineno", tree.body[0].lineno
        )
    return 0


def _add_imports(text: str, imports: List[str]) -> str:
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return text
    missing = [
        line for line in imports if _needs_import(tree, line)
    ]
    if not missing:
        return text
    lines = text.splitlines(keepends=True)
    at = _insertion_line(tree)
    insert = "".join(f"{line}\n" for line in missing)
    prefix = "".join(lines[:at])
    if prefix and not prefix.endswith("\n"):
        # The insertion point is the file's unterminated last line
        # (e.g. a docstring-only module): splice a newline first, or
        # the import concatenates onto it and the file stops parsing.
        prefix += "\n"
    return prefix + insert + "".join(lines[at:])


def apply_fixes(
    root: Path, fixes: Dict[str, FileFixes]
) -> Tuple[int, int]:
    """Apply planned fixes; returns (patches applied, files touched)."""
    patched = 0
    files = 0
    for path, planned in sorted(fixes.items()):
        target = root / path
        try:
            text = target.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        updated = _apply_patches(text, planned.patches)
        if updated == text:
            continue
        updated = _add_imports(updated, planned.imports)
        target.write_text(updated, encoding="utf-8")
        patched += len(planned.patches)
        files += 1
    return patched, files
