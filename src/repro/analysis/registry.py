"""Rule base classes and the global rule registry.

A rule is either *file-scoped* (``check(source)`` runs once per parsed
file) or *project-scoped* (``check_project(root)`` runs once per
invocation against the repository).  Rules self-register via the
:func:`register` decorator, which is what makes ``--list-rules`` and
``--select`` work without a hand-maintained table.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterator, List, Type

from .findings import SEVERITIES, Finding


class Rule:
    """Common surface of every analysis rule.

    Class attributes each concrete rule must define:
        id: Stable identifier (``"RNG001"``) used in reports, ``noqa``
            comments, ``--select``, and the baseline file.
        severity: ``"error"`` or ``"warning"``.
        description: One-line summary shown by ``--list-rules``.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""

    def finding(
        self, path: str, line: int, message: str, line_text: str = ""
    ) -> Finding:
        """A :class:`Finding` stamped with this rule's id/severity."""
        return Finding(
            path=path,
            line=line,
            rule=self.id,
            message=message,
            severity=self.severity,
            line_text=line_text,
        )


class FileRule(Rule):
    """A rule that inspects one parsed source file at a time."""

    def check(self, source) -> Iterator[Finding]:
        """Yield findings for ``source`` (a :class:`SourceFile`)."""
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that inspects the repository as a whole."""

    def check_project(self, root: Path) -> Iterator[Finding]:
        """Yield findings for the repo rooted at ``root``."""
        raise NotImplementedError


class ProgramRule(Rule):
    """A rule over the whole-program model (symbol table + call graph).

    Program rules see every analyzed module at once through a
    :class:`repro.analysis.program.Program`, so they can check
    cross-module flow properties (seed provenance, transitive
    pickle-safety, interprocedural exception flow) that file rules can
    only approximate syntactically.
    """

    def check_program(self, program: object) -> Iterator[Finding]:
        """Yield findings for a built :class:`Program` model."""
        raise NotImplementedError


#: id → rule class, in registration order.
RULES: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.severity not in SEVERITIES:
        raise ValueError(
            f"{rule_class.id}: severity must be one of {SEVERITIES}, "
            f"got {rule_class.severity!r}"
        )
    if rule_class.id in RULES:
        raise ValueError(f"duplicate rule id {rule_class.id}")
    RULES[rule_class.id] = rule_class
    return rule_class


def _validate_ids(ids: "List[str]", kind: str) -> None:
    missing = [rule_id for rule_id in ids if rule_id not in RULES]
    if missing:
        raise KeyError(
            f"unknown {kind} rule id(s): {', '.join(sorted(missing))}; "
            f"known: {', '.join(RULES)}"
        )


def instantiate(
    select: "List[str] | None" = None,
    predicate: "Callable[[Type[Rule]], bool] | None" = None,
    ignore: "List[str] | None" = None,
) -> List[Rule]:
    """Fresh instances of the registered rules.

    Args:
        select: Restrict to these rule ids (unknown ids raise KeyError).
        predicate: Optional extra filter on the rule class.
        ignore: Drop these rule ids after selection (unknown ids raise
            KeyError — a typo'd ``--ignore`` silently running the rule
            it meant to mute would be worse than failing loudly).
    """
    if select is not None:
        _validate_ids(select, "selected")
        chosen = [RULES[rule_id] for rule_id in select]
    else:
        chosen = list(RULES.values())
    if ignore:
        _validate_ids(ignore, "ignored")
        dropped = set(ignore)
        chosen = [cls for cls in chosen if cls.id not in dropped]
    if predicate is not None:
        chosen = [cls for cls in chosen if predicate(cls)]
    return [cls() for cls in chosen]
