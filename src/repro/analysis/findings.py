"""The finding record every analysis rule emits."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict

#: Finding severities, in increasing order of gravity.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Repo-root-relative POSIX path of the offending file.
        line: 1-based line number (0 for whole-file/project findings).
        rule: Rule identifier (``"RNG001"``).
        message: Human-readable description of the violation.
        severity: ``"error"`` or ``"warning"``.
        line_text: The stripped source line, used for baseline
            fingerprinting so findings survive unrelated line drift.
    """

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"
    line_text: str = ""

    def fingerprint(self) -> str:
        """Content-addressed identity used by the baseline file.

        Hashes the rule, path, and stripped line *text* (not the line
        number), so grandfathered findings stay matched when unrelated
        edits shift them up or down the file.
        """
        digest = hashlib.sha256(
            f"{self.rule}\x00{self.path}\x00{self.line_text.strip()}"
            .encode("utf-8")
        ).hexdigest()
        return f"{self.rule}:{digest[:16]}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (stable key set, pinned by the tests)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
