"""The committed baseline of grandfathered findings.

A baseline lets the analyzer land with the codebase still dirty: known
findings are recorded by fingerprint and stop failing the build, while
anything *new* still does.  The repo's committed baseline
(``tools/lint-baseline.json``) is empty — every finding has been fixed
— and the acceptance tests keep it that way.

Fingerprints hash rule + path + stripped line text (not line numbers),
so unrelated edits that shift a grandfathered line do not resurrect it.
Identical lines in one file share a fingerprint; the baseline stores a
*count* per fingerprint and forgives at most that many occurrences.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from .findings import Finding

#: Schema version of the baseline document.
BASELINE_FORMAT = 1


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint → forgiven-occurrence count from a baseline file.

    A missing file is an empty baseline.  Raises ``ValueError`` on a
    malformed document so CI fails loudly rather than un-suppressing.
    """
    if not path.exists():
        return {}
    document = json.loads(path.read_text(encoding="utf-8"))
    if (
        not isinstance(document, dict)
        or document.get("format") != BASELINE_FORMAT
        or not isinstance(document.get("findings"), list)
    ):
        raise ValueError(
            f"{path}: not a version-{BASELINE_FORMAT} baseline document"
        )
    counts: Dict[str, int] = {}
    for record in document["findings"]:
        counts[str(record["fingerprint"])] = int(record.get("count", 1))
    return counts


def load_baseline_records(path: Path) -> List[Dict[str, object]]:
    """The baseline's full finding records (fingerprint, rule, path,
    count), for staleness reporting and pruning.  Missing file → [].
    """
    if not path.exists():
        return []
    document = json.loads(path.read_text(encoding="utf-8"))
    if (
        not isinstance(document, dict)
        or document.get("format") != BASELINE_FORMAT
        or not isinstance(document.get("findings"), list)
    ):
        raise ValueError(
            f"{path}: not a version-{BASELINE_FORMAT} baseline document"
        )
    records: List[Dict[str, object]] = []
    for record in document["findings"]:
        records.append({
            "fingerprint": str(record["fingerprint"]),
            "rule": str(record.get("rule", "")),
            "path": str(record.get("path", "")),
            "count": int(record.get("count", 1)),
        })
    return records


def stale_entries(
    records: List[Dict[str, object]], findings: List[Finding]
) -> List[Dict[str, object]]:
    """Baseline records forgiving more findings than still exist.

    ``findings`` must be the *pre-baseline* finding list (fresh and
    grandfathered together).  A record is stale when fewer matching
    findings remain than its recorded count — the violation was fixed
    (fully or partly) but the baseline still carries the debt.
    """
    observed = Counter(finding.fingerprint() for finding in findings)
    stale: List[Dict[str, object]] = []
    for record in records:
        matched = observed.get(str(record["fingerprint"]), 0)
        count = int(record["count"])  # type: ignore[arg-type]
        if matched < count:
            stale.append({**record, "matched": matched})
    return stale


def prune_baseline(
    path: Path, findings: List[Finding]
) -> Tuple[int, int]:
    """Drop stale baseline entries; returns (kept, pruned) counts.

    Each record's count shrinks to the number of findings that still
    match it; records that no longer match anything are removed.  The
    (possibly empty) document is rewritten in ``write_baseline``'s
    format so the two stay byte-compatible.
    """
    records = load_baseline_records(path)
    observed = Counter(finding.fingerprint() for finding in findings)
    kept: List[Dict[str, object]] = []
    pruned = 0
    for record in records:
        count = int(record["count"])  # type: ignore[arg-type]
        matched = observed.get(str(record["fingerprint"]), 0)
        new_count = min(count, matched)
        pruned += count - new_count
        if new_count > 0:
            kept.append({**record, "count": new_count})
    document = {
        "format": BASELINE_FORMAT,
        "findings": sorted(
            kept, key=lambda record: str(record["fingerprint"])
        ),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(kept), pruned


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, deduplicated)."""
    counts = Counter(finding.fingerprint() for finding in findings)
    by_print = {f.fingerprint(): f for f in findings}
    document = {
        "format": BASELINE_FORMAT,
        "findings": [
            {
                "fingerprint": fingerprint,
                "rule": by_print[fingerprint].rule,
                "path": by_print[fingerprint].path,
                "count": count,
            }
            for fingerprint, count in sorted(counts.items())
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def split_baselined(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (fresh, grandfathered).

    Each fingerprint forgives at most its recorded count; findings
    beyond that count are fresh (a grandfathered pattern that *spread*
    still fails the build).
    """
    remaining = dict(baseline)
    fresh: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in sorted(findings):
        fingerprint = finding.fingerprint()
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            grandfathered.append(finding)
        else:
            fresh.append(finding)
    return fresh, grandfathered
