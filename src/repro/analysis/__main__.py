"""Command-line entry point: ``python -m repro.analysis``.

Exit codes: 0 = clean, 1 = findings, 2 = usage error or unanalyzable
input (unreadable/SyntaxError files).  Also exposed as
``python tools/lint.py`` for invocations without ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .autofix import apply_fixes, generate_fixes
from .baseline import prune_baseline, write_baseline
from .diff import DiffError, changed_lines, triggers_project_rules
from .registry import RULES, ProgramRule, ProjectRule
from .reporters import render_json, render_text
from .runner import (
    PARSE_RULE,
    AnalysisConfig,
    discover_root,
    run_analysis,
)
from .sarif import render_sarif

#: Baseline location used when none is given explicitly.
DEFAULT_BASELINE = Path("tools") / "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant linter for determinism, worker-safety,"
            " and metrics discipline, with whole-program call-graph and"
            " data-flow rules (see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files/directories to analyze (default: src/repro; "
        "explicit paths also skip the repo-level docs rules and the "
        "whole-program rules)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root (default: nearest ancestor with a "
        "pyproject.toml)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="analyze the whole repository with every rule scope "
        "(file, project, and whole-program), ignoring positional "
        "paths",
    )
    parser.add_argument(
        "--diff", metavar="BASE", default=None,
        help="only report findings on lines changed since the given "
        "git base (e.g. HEAD~1, origin/main); unchanged files load "
        "from the summary cache",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply safe autofixes (bare RNG constructions -> "
        "ensure_rng; boundary raise ValueError -> "
        "ConfigurationError), then re-analyze",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file of grandfathered findings (default: "
        "tools/lint-baseline.json under the root, when it exists)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="prune baseline entries that no longer match any "
        "finding and exit 0",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids to skip (applied after "
        "--select; unknown ids are a usage error)",
    )
    parser.add_argument(
        "--no-project", action="store_true",
        help="skip the repo-level rules (DOC002 docs consistency, "
        "MET002 catalog sync)",
    )
    parser.add_argument(
        "--no-program", action="store_true",
        help="skip the whole-program rules (SEED001, PKL001, "
        "EXC001X, DEAD001, the typestate rules SHM001/RES001, and "
        "the concurrency rules LCK001/LCK002/LCK003/ATM001)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the module-summary cache "
        "(.repro-analysis-cache.json)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings as well as errors",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id, rule_class in RULES.items():
        if issubclass(rule_class, ProjectRule):
            scope = "project"
        elif issubclass(rule_class, ProgramRule):
            scope = "program"
        else:
            scope = "file"
        lines.append(
            f"{rule_id}  [{rule_class.severity}/{scope}]  "
            f"{rule_class.description}"
        )
    return "\n".join(lines)


def _render(result, format_name: str) -> str:
    if format_name == "json":
        return render_json(result)
    if format_name == "sarif":
        return render_sarif(result)
    return render_text(result)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    root = (
        args.root.resolve() if args.root is not None
        else discover_root()
    )
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select else None
    )
    ignore = (
        [part.strip() for part in args.ignore.split(",") if part.strip()]
        if args.ignore else None
    )
    baseline_path = args.baseline
    if baseline_path is None:
        default = root / DEFAULT_BASELINE
        baseline_path = default if default.exists() else None
    elif not baseline_path.is_absolute():
        baseline_path = root / baseline_path

    paths = [] if args.all else list(args.paths)
    changed = None
    project_rules = not args.no_project and not paths
    if args.diff is not None:
        try:
            changed = changed_lines(root, args.diff)
        except DiffError as error:
            print(f"repro.analysis: {error}", file=sys.stderr)
            return 2
        project_rules = (
            not args.no_project and triggers_project_rules(changed)
        )

    config = AnalysisConfig(
        root=root,
        paths=paths,
        select=select,
        ignore=ignore,
        # --write-baseline records everything, including findings the
        # old baseline already forgave.
        baseline_path=(
            None if args.write_baseline else baseline_path
        ),
        project_rules=project_rules,
        strict=args.strict,
        program_rules=(
            False if args.no_program
            else (True if (args.all or args.diff is not None)
                  else not paths)
        ),
        changed=changed,
        use_cache=not args.no_cache,
    )
    try:
        result = run_analysis(config)
    except KeyError as error:
        print(f"repro.analysis: {error.args[0]}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"repro.analysis: {error}", file=sys.stderr)
        return 2

    if args.fix:
        fixes = generate_fixes(root, result.findings)
        patched, files = apply_fixes(root, fixes)
        if patched:
            print(
                f"repro.analysis: applied {patched} fix(es) in "
                f"{files} file(s)"
            )
            result = run_analysis(config)

    if args.write_baseline:
        target = args.baseline or (root / DEFAULT_BASELINE)
        if not target.is_absolute():
            target = root / target
        write_baseline(target, result.findings)
        print(
            f"repro.analysis: wrote {len(result.findings)} finding(s) "
            f"to {target}"
        )
        return 0

    if args.update_baseline:
        target = args.baseline or (root / DEFAULT_BASELINE)
        if not target.is_absolute():
            target = root / target
        kept, pruned = prune_baseline(
            target, result.findings + result.grandfathered
        )
        print(
            f"repro.analysis: baseline now {kept} entr"
            f"{'y' if kept == 1 else 'ies'} ({pruned} pruned) at "
            f"{target}"
        )
        return 0

    print(_render(result, args.format))

    unanalyzable = [
        finding for finding in (
            *result.findings, *result.grandfathered
        )
        if finding.rule == PARSE_RULE
    ]
    if unanalyzable:
        for finding in unanalyzable:
            print(
                f"repro.analysis: cannot analyze {finding.path}: "
                f"{finding.message}",
                file=sys.stderr,
            )
        return 2

    return result.exit_code(strict=args.strict)


if __name__ == "__main__":
    raise SystemExit(main())
