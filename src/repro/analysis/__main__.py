"""Command-line entry point: ``python -m repro.analysis``.

Exit codes: 0 = clean, 1 = findings, 2 = usage error.  Also exposed as
``python tools/lint.py`` for invocations without ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import write_baseline
from .registry import RULES, ProjectRule
from .reporters import render_json, render_text
from .runner import AnalysisConfig, discover_root, run_analysis

#: Baseline location used when none is given explicitly.
DEFAULT_BASELINE = Path("tools") / "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant linter for determinism, worker-safety,"
            " and metrics discipline (see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files/directories to analyze (default: src/repro; "
        "explicit paths also skip the repo-level docs rules)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root (default: nearest ancestor with a "
        "pyproject.toml)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file of grandfathered findings (default: "
        "tools/lint-baseline.json under the root, when it exists)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-project", action="store_true",
        help="skip the repo-level rules (DOC002 docs consistency, "
        "MET002 catalog sync)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings as well as errors",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id, rule_class in RULES.items():
        scope = (
            "project" if issubclass(rule_class, ProjectRule) else "file"
        )
        lines.append(
            f"{rule_id}  [{rule_class.severity}/{scope}]  "
            f"{rule_class.description}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    root = (
        args.root.resolve() if args.root is not None
        else discover_root()
    )
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select else None
    )
    baseline_path = args.baseline
    if baseline_path is None:
        default = root / DEFAULT_BASELINE
        baseline_path = default if default.exists() else None
    elif not baseline_path.is_absolute():
        baseline_path = root / baseline_path

    config = AnalysisConfig(
        root=root,
        paths=list(args.paths),
        select=select,
        # --write-baseline records everything, including findings the
        # old baseline already forgave.
        baseline_path=None if args.write_baseline else baseline_path,
        project_rules=not args.no_project and not args.paths,
        strict=args.strict,
    )
    try:
        result = run_analysis(config)
    except KeyError as error:
        print(f"repro.analysis: {error.args[0]}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"repro.analysis: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or (root / DEFAULT_BASELINE)
        if not target.is_absolute():
            target = root / target
        write_baseline(target, result.findings)
        print(
            f"repro.analysis: wrote {len(result.findings)} finding(s) "
            f"to {target}"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code(strict=args.strict)


if __name__ == "__main__":
    raise SystemExit(main())
