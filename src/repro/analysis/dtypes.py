"""A tiny numpy dtype / contiguity lattice for the kernel rules.

The wedge/butterfly kernels pin a scalar bit-identity contract: CSR
indptr/indices are ``int64`` and weights/probabilities are ``float64``
end to end (``docs/kernels.md``).  DTY001 and SHP001 check the two
ways that contract silently erodes:

* a *narrow* dtype (``int32``/``float32``-class) slipped into an
  accumulating primitive — ``cumsum``, ``ufunc.reduceat``,
  ``searchsorted`` — truncates or rounds differently from the pinned
  reference exactly when inputs grow past the narrow range;
* a *non-contiguous* view (transpose, step slice) handed across a
  buffer seam (``np.frombuffer`` reconstructions, ``tobytes``,
  shared-memory publication) either copies silently or reinterprets
  strides, so the worker-side reconstruction no longer aliases the
  published bytes.

The lattice here is deliberately coarse — syntactic dtype names and
obviously-strided expressions — because the rules only need to
classify what crosses a handful of known-dangerous call seams.
"""

from __future__ import annotations

import ast
from typing import Optional

#: Narrow dtypes whose use in accumulators breaks bit identity.
NARROW_INTS = frozenset({"int8", "int16", "int32"})
NARROW_FLOATS = frozenset({"float16", "float32"})
NARROW = NARROW_INTS | NARROW_FLOATS

#: The pinned wide dtypes of the kernel contract.
WIDE = frozenset({"int64", "float64"})

#: Narrow dtype → the pinned wide dtype the autofix widens it to.
WIDEN = {
    "int8": "int64", "int16": "int64", "int32": "int64",
    "float16": "float64", "float32": "float64",
}

#: Call tails that accumulate/scan and therefore honour ``dtype=`` or
#: the operand dtype in a bit-identity-relevant way.
ACCUMULATOR_TAILS = frozenset({
    "cumsum", "cumprod", "reduceat", "searchsorted", "accumulate",
})


def dtype_name(node: ast.expr) -> Optional[str]:
    """The dtype a syntactic dtype expression names, if recognisable.

    Handles ``np.int32`` / ``numpy.int32`` attribute chains, bare
    ``"int32"`` string constants, and ``np.dtype("int32")`` wrappers.
    Returns ``None`` for anything dynamic.
    """
    if isinstance(node, ast.Attribute):
        return node.attr if node.attr in (NARROW | WIDE) else None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
        return name if name in (NARROW | WIDE) else None
    if isinstance(node, ast.Call):
        func = node.func
        tail = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if tail == "dtype" and node.args:
            return dtype_name(node.args[0])
    if isinstance(node, ast.Name):
        return node.id if node.id in (NARROW | WIDE) else None
    return None


def narrow_dtype_of_call(call: ast.Call) -> Optional[ast.expr]:
    """The ``dtype=`` keyword value of ``call`` when it names a narrow
    dtype; ``None`` otherwise."""
    for keyword in call.keywords:
        if keyword.arg == "dtype":
            name = dtype_name(keyword.value)
            if name in NARROW:
                return keyword.value
    return None


def astype_narrow(node: ast.expr) -> Optional[str]:
    """The narrow dtype of an ``x.astype(<narrow>)`` expression."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
        return None
    candidates = list(node.args[:1]) + [
        kw.value for kw in node.keywords if kw.arg == "dtype"
    ]
    for candidate in candidates:
        name = dtype_name(candidate)
        if name in NARROW:
            return name
    return None


def is_strided(node: ast.expr) -> bool:
    """Whether an expression is an obviously non-contiguous view.

    Recognises ``x.T``, ``x.transpose(...)`` / ``np.transpose(x)``,
    ``x.swapaxes(...)``, and step slices (``x[::2]``, ``x[a:b:c]``
    with a non-unit step).  Conservative: anything else is assumed
    contiguous.
    """
    if isinstance(node, ast.Attribute):
        if node.attr in ("T", "mT"):
            return True
        return is_strided(node.value)
    if isinstance(node, ast.Call):
        func = node.func
        tail = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if tail in ("transpose", "swapaxes", "moveaxis", "rollaxis"):
            return True
        if tail == "ascontiguousarray":
            return False
        return False
    if isinstance(node, ast.Subscript):
        return _has_step_slice(node.slice) or is_strided(node.value)
    return False


def _has_step_slice(node: ast.expr) -> bool:
    if isinstance(node, ast.Slice):
        step = node.step
        if step is None:
            return False
        if isinstance(step, ast.Constant) and step.value in (1, None):
            return False
        return True
    if isinstance(node, ast.Tuple):
        return any(_has_step_slice(element) for element in node.elts)
    return False


def is_contiguity_fixed(node: ast.expr) -> bool:
    """Whether the expression is wrapped in ``ascontiguousarray`` (or
    ``copy()``), which restores contiguity."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    tail = (
        func.attr if isinstance(func, ast.Attribute)
        else func.id if isinstance(func, ast.Name) else None
    )
    return tail in ("ascontiguousarray", "copy", "asarray")
