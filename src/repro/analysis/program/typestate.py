"""Declarative typestate and resource-lifetime analysis.

A :class:`ProtocolSpec` describes a resource protocol as a small state
machine: how a resource is acquired (a constructor call or a
slot-taking method on a receiver), the *events* that move it between
states (method tails like ``close``/``unlink``/``release``), which
transitions are legal, which states are acceptable at function exit,
and which (state, event) pairs are protocol violations.  Specs live in
the :data:`PROTOCOLS` registry so new protocols (streaming handles,
future breaker variants) are added declaratively, without touching the
engine.

The engine evaluates each protocol over the existing
:class:`~repro.analysis.program.symbols.ModuleSummary` IR:

* **locally** — per function, the calls/raises/returns are replayed in
  program order as a timeline per tracked resource, branch-aware (two
  arms of one ``if`` never see each other's events) and
  exception-aware (``except``/``finally`` releases only count on the
  paths they actually run on);
* **interprocedurally** — a monotone fixpoint (the same worklist shape
  as :func:`~repro.analysis.program.dataflow._param_fixpoint`) computes
  which *parameters* of which functions have protocol events applied to
  them, so ``_cleanup_segment(shm)`` counts as close+unlink at the call
  site and a release living in a different module than its acquire is
  still paired.  Passing a resource to ``weakref.finalize`` (or any
  spec-listed finalizer) delegates its lifetime.

Violations carry a human-readable *typestate trace* — the state after
each step that led to the violation — which the rules embed in the
finding message (and therefore in SARIF result messages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .callgraph import CallGraph
from .dataflow import _map_argument, _tail
from .symbols import (
    CallSite,
    FunctionSummary,
    ModuleSummary,
    ProjectIndex,
)

#: Calls that cannot raise in practice and therefore do not threaten a
#: held resource on an exception edge.
_SAFE_CALL_TAILS = frozenset({
    "len", "bool", "id", "repr", "isinstance", "issubclass",
    "hasattr", "type", "print", "format",
})

#: Synthetic state for a resource whose lifetime was handed to a
#: finalizer or an unknown consumer; accepting for every protocol.
DELEGATED = "delegated"

#: Synthetic event for a non-event method call on a tracked receiver.
USE = "use"


@dataclass(frozen=True)
class ProtocolSpec:
    """One declarative resource protocol.

    Attributes:
        name: Registry key (``"shm-segment"``).
        rule_id: The analysis rule that reports this protocol's
            violations (several protocols may share one rule).
        resource: Human-readable resource name used in messages.
        initial: State a resource is in immediately after acquire.
        acquire_calls: Callee/raw name *tails* whose call result is the
            resource (constructor-style acquire; the resource identity
            is the assignment target).
        acquire_methods: Method-name tails that take a slot on their
            receiver (``breaker.allow()``); the receiver is the
            resource identity.
        events: event name → method-name tails that trigger it on the
            resource receiver.
        transitions: (state, event) → next state; pairs absent from
            both ``transitions`` and ``errors`` are ignored no-ops.
        errors: (state, event) → violation message template
            (``{resource}`` is substituted).
        releasing: Events that return/retire the resource (used by the
            leak checks).
        accepting: States that are fine at function exit.
        finalizers: Callee tails/suffixes that take over the resource's
            lifetime when it is passed to them as an argument.
        scope_dirs: When set, findings are only reported for files
            whose directory path intersects these names.
        use_check: Whether non-event method calls on the receiver are
            checked as the synthetic ``use`` event (use-after-close).
        track_self_storage: Whether resources stored on ``self`` must
            be retired by a sibling method or a registered finalizer.
    """

    name: str
    rule_id: str
    resource: str
    initial: str
    acquire_calls: Tuple[str, ...] = ()
    acquire_methods: Tuple[str, ...] = ()
    events: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    transitions: Dict[Tuple[str, str], str] = field(default_factory=dict)
    errors: Dict[Tuple[str, str], str] = field(default_factory=dict)
    releasing: Tuple[str, ...] = ()
    accepting: Tuple[str, ...] = ()
    finalizers: Tuple[str, ...] = ("weakref.finalize",)
    scope_dirs: Tuple[str, ...] = ()
    use_check: bool = True
    track_self_storage: bool = False

    def event_for(self, tail: str) -> Optional[str]:
        """The event a method tail triggers, if any."""
        for event, tails in self.events.items():
            if tail in tails:
                return event
        return None

    def is_accepting(self, state: str) -> bool:
        return state == DELEGATED or state in self.accepting


#: Protocol registry: name → spec.  Rules iterate specs by rule id;
#: future protocols register here and are picked up automatically.
PROTOCOLS: Dict[str, ProtocolSpec] = {}


def register_protocol(spec: ProtocolSpec) -> ProtocolSpec:
    """Add a protocol spec to the global registry."""
    if spec.name in PROTOCOLS:
        raise ValueError(f"duplicate protocol {spec.name!r}")
    PROTOCOLS[spec.name] = spec
    return spec


def protocols_for(rule_id: str) -> List[ProtocolSpec]:
    """All registered protocols reported under ``rule_id``."""
    return [
        spec for spec in PROTOCOLS.values() if spec.rule_id == rule_id
    ]


register_protocol(ProtocolSpec(
    name="shm-segment",
    rule_id="SHM001",
    resource="shared-memory segment",
    initial="attached",
    acquire_calls=("SharedMemory",),
    events={
        "close": ("close",),
        "unlink": ("unlink",),
    },
    transitions={
        ("attached", "close"): "closed",
        ("attached", "unlink"): "unlinked",
        ("closed", "close"): "closed",
        ("closed", "unlink"): "unlinked",
        ("unlinked", "close"): "unlinked",
    },
    errors={
        ("unlinked", "unlink"):
            "double unlink of the {resource}",
        ("closed", USE):
            "{resource} used after close()",
        ("unlinked", USE):
            "{resource} used after unlink()",
    },
    releasing=("close", "unlink"),
    accepting=("closed", "unlinked"),
    track_self_storage=True,
))

register_protocol(ProtocolSpec(
    name="breaker-probe",
    rule_id="RES001",
    resource="circuit-breaker probe slot",
    initial="held",
    acquire_methods=("allow",),
    events={
        "return": ("cancel_probe", "record_success", "record_failure"),
    },
    transitions={
        ("held", "return"): "returned",
        ("returned", "return"): "returned",
    },
    releasing=("return",),
    accepting=("returned",),
    scope_dirs=("service", "runtime"),
    use_check=False,
))

register_protocol(ProtocolSpec(
    name="admission-token",
    rule_id="RES001",
    resource="admission inflight slot",
    initial="held",
    acquire_methods=("admit",),
    events={
        "return": ("release",),
    },
    transitions={
        ("held", "return"): "returned",
        ("returned", "return"): "returned",
    },
    releasing=("return",),
    accepting=("returned",),
    scope_dirs=("service", "runtime"),
    use_check=False,
))


@dataclass(frozen=True)
class Violation:
    """One protocol violation, ready to become a finding."""

    path: str
    line: int
    message: str


@dataclass
class _Action:
    """One timeline entry for a tracked resource."""

    kind: str  # "acquire" | "event" | "use" | "risky" | "return"
    line: int
    branch: List[str]
    cleanup: bool
    guarded: bool
    caught: List[str]
    event: Optional[str] = None  # for kind == "event"
    desc: str = ""


@dataclass
class _Resource:
    """One tracked resource inside one function."""

    name: str
    tag: Optional[str]
    acquire_line: int
    acquire_desc: str
    actions: List[_Action] = field(default_factory=list)
    delegated: bool = False
    escaped: bool = False
    returned: bool = False

    @property
    def self_stored(self) -> bool:
        return self.name.startswith(("self.", "cls."))


def _exclusive(first: List[str], second: List[str]) -> bool:
    """Whether two branch contexts are mutually exclusive arms."""
    for mine, theirs in zip(first, second):
        if mine == theirs:
            continue
        my_if, _, my_arm = mine.rpartition(":")
        their_if, _, their_arm = theirs.rpartition(":")
        return my_if == their_if and my_arm != their_arm
    return False


def _broadly_caught(caught: List[str]) -> bool:
    return any(
        _tail(name) in ("BaseException", "Exception") for name in caught
    )


def _matches_tail(site_name: Optional[str], tails: Tuple[str, ...]) -> bool:
    if site_name is None:
        return False
    return _tail(site_name) in tails


def _receiver_and_tail(raw: str) -> Tuple[Optional[str], str]:
    """Split ``a.b.close`` into receiver ``a.b`` and tail ``close``."""
    if "." not in raw:
        return None, raw
    receiver, _, tail = raw.rpartition(".")
    return receiver, tail


class TypestateAnalysis:
    """Evaluate one protocol over the whole program.

    Builds the interprocedural *effects* fixpoint once, then walks
    every function's timeline.  Use :meth:`violations` to iterate the
    protocol violations with their typestate traces.
    """

    def __init__(
        self,
        index: ProjectIndex,
        graph: CallGraph,
        spec: ProtocolSpec,
        summaries: Optional[Dict[str, ModuleSummary]] = None,
    ) -> None:
        self.index = index
        self.graph = graph
        self.spec = spec
        self.summaries = summaries or {}
        #: fq → param name → events applied to that param (including
        #: the synthetic ``DELEGATED`` pseudo-event).
        self.effects: Dict[str, Dict[str, Set[str]]] = (
            self._effects_fixpoint()
        )

    # -- interprocedural effects ------------------------------------

    def _local_effects(
        self, function: FunctionSummary
    ) -> Dict[str, Set[str]]:
        """Events a function applies directly to its parameters."""
        effects: Dict[str, Set[str]] = {}
        params = set(function.params)
        for site in function.calls:
            receiver, tail = _receiver_and_tail(site.raw)
            if receiver in params:
                event = self.spec.event_for(tail)
                if event is not None:
                    effects.setdefault(receiver, set()).add(event)
            if self._is_finalizer(site):
                for tag in (*site.args, *site.kwargs.values()):
                    if tag.startswith("param:"):
                        param = tag[len("param:"):]
                        if param not in ("self", "cls"):
                            effects.setdefault(param, set()).add(
                                DELEGATED
                            )
        return effects

    def _is_finalizer(self, site: CallSite) -> bool:
        for pattern in self.spec.finalizers:
            for name in (site.callee, site.raw):
                if name is None:
                    continue
                if name == pattern or name.endswith("." + pattern):
                    return True
        return False

    def _effects_fixpoint(self) -> Dict[str, Dict[str, Set[str]]]:
        facts: Dict[str, Dict[str, Set[str]]] = {}
        for fq, function in self.index.functions.items():
            local = self._local_effects(function)
            if local:
                facts[fq] = local
        worklist = list(facts)
        while worklist:
            changed_fq = worklist.pop()
            for caller in self.graph.callers_of(changed_fq):
                summary = self.index.functions.get(caller)
                if summary is None:
                    continue
                caller_facts = facts.setdefault(caller, {})
                before = sum(
                    len(events) for events in caller_facts.values()
                )
                for callee_fq, site in self.graph.callees(caller):
                    if callee_fq != changed_fq:
                        continue
                    callee = self.index.functions[callee_fq]
                    callee_facts = facts.get(callee_fq, {})
                    for param, tag in _map_argument(
                        site, callee, skip_self=callee.is_method
                    ):
                        events = callee_facts.get(param)
                        if events and tag.startswith("param:"):
                            source = tag[len("param:"):]
                            caller_facts.setdefault(
                                source, set()
                            ).update(events)
                after = sum(
                    len(events) for events in caller_facts.values()
                )
                if after != before:
                    worklist.append(caller)
                elif not caller_facts:
                    facts.pop(caller, None)
        return facts

    # -- per-function evaluation ------------------------------------

    def violations(
        self, fq: str, function: FunctionSummary, path: str
    ) -> Iterator[Violation]:
        """Protocol violations inside one function."""
        for resource in self._resources(fq, function):
            yield from self._check_resource(fq, function, path, resource)

    def _resource_tag(
        self, fq: str, function: FunctionSummary, name: str
    ) -> Optional[str]:
        """Provenance tag other call sites use for this resource."""
        if name.startswith(("self.", "cls.")):
            attr = name.split(".", 1)[1]
            if function.is_method and "." in fq:
                class_fq = fq.rsplit(".", 1)[0]
                return f"ref:{class_fq}.{attr}"
            return None
        if name in function.params:
            return f"param:{name}"
        for site in function.calls:
            if site.target == name:
                return f"call:{site.callee}" if site.callee else "call:?"
        return None

    def _resources(
        self, fq: str, function: FunctionSummary
    ) -> List[_Resource]:
        resources: Dict[str, _Resource] = {}
        spec = self.spec
        for site in function.calls:
            if spec.acquire_calls and (
                _matches_tail(site.callee, spec.acquire_calls)
                or _matches_tail(site.raw, spec.acquire_calls)
            ):
                name = site.target or f"@{site.line}"
                if name not in resources:
                    resources[name] = _Resource(
                        name=name,
                        tag=self._resource_tag(fq, function, name)
                        if site.target else (
                            f"call:{site.callee}"
                            if site.callee else "call:?"
                        ),
                        acquire_line=site.line,
                        acquire_desc=f"{site.raw}()",
                    )
            if spec.acquire_methods:
                receiver, tail = _receiver_and_tail(site.raw)
                if receiver is not None and tail in spec.acquire_methods:
                    if receiver not in resources:
                        resources[receiver] = _Resource(
                            name=receiver,
                            tag=self._resource_tag(
                                fq, function, receiver
                            ),
                            acquire_line=site.line,
                            acquire_desc=f"{site.raw}()",
                        )
        for resource in resources.values():
            self._build_timeline(fq, function, resource)
        return list(resources.values())

    def _build_timeline(
        self, fq: str, function: FunctionSummary, resource: _Resource
    ) -> None:
        entries: List[Tuple[int, int, _Action]] = []
        order = 0
        seen_acquire = False
        for site in function.calls:
            order += 1
            action = self._classify(site, resource, seen_acquire)
            if action is None:
                continue
            if action.kind == "acquire":
                seen_acquire = True
            entries.append((site.line, order, action))
        for ret in function.returns:
            order += 1
            returned = (
                resource.tag is not None and ret.tag == resource.tag
            )
            if returned:
                resource.returned = True
            entries.append((ret.line, order, _Action(
                kind="return", line=ret.line, branch=ret.branch,
                cleanup=ret.cleanup, guarded=ret.guarded, caught=[],
                desc="return" + (
                    f" {resource.name}" if returned else ""
                ),
                event=DELEGATED if returned else None,
            )))
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        resource.actions = [action for _, _, action in entries]

    def _classify(
        self, site: CallSite, resource: _Resource, seen_acquire: bool
    ) -> Optional[_Action]:
        spec = self.spec
        receiver, tail = _receiver_and_tail(site.raw)
        base = dict(
            line=site.line, branch=site.branch, cleanup=site.cleanup,
            guarded=site.guarded, caught=site.caught,
        )
        # The acquire site itself.
        is_ctor_acquire = spec.acquire_calls and (
            _matches_tail(site.callee, spec.acquire_calls)
            or _matches_tail(site.raw, spec.acquire_calls)
        ) and (site.target or f"@{site.line}") == resource.name
        is_method_acquire = (
            spec.acquire_methods
            and receiver == resource.name
            and tail in spec.acquire_methods
        )
        if is_ctor_acquire or is_method_acquire:
            return _Action(
                kind="acquire", desc=f"{site.raw}()", **base
            )
        # Method events / uses on the resource receiver.
        if receiver is not None and (
            receiver == resource.name
            or receiver.startswith(resource.name + ".")
        ):
            event = (
                spec.event_for(tail) if receiver == resource.name
                else None
            )
            if event is not None:
                return _Action(
                    kind="event", event=event,
                    desc=f"{site.raw}()", **base,
                )
            if spec.use_check:
                return _Action(kind="use", desc=f"{site.raw}()", **base)
            return _Action(kind="risky", desc=f"{site.raw}()", **base)
        # Passing the resource to another function.
        if resource.tag is not None and (
            resource.tag in site.args
            or resource.tag in site.kwargs.values()
        ):
            if self._is_finalizer(site):
                resource.delegated = True
                return _Action(
                    kind="event", event=DELEGATED,
                    desc=f"{site.raw}()", **base,
                )
            events = self._callee_events(site, resource.tag)
            if events:
                if DELEGATED in events:
                    resource.delegated = True
                # Apply the releasing events a callee performs on the
                # passed-in resource, in a stable order.
                applied = sorted(events)
                return _Action(
                    kind="event", event=applied[0],
                    desc=f"{site.raw}()", **base,
                ) if len(applied) == 1 else _Action(
                    kind="multi-event", event="+".join(applied),
                    desc=f"{site.raw}()", **base,
                )
            resource.escaped = True
            return _Action(
                kind="risky", desc=f"{site.raw}()", **base
            )
        # Any other call while the resource may be held is a risk on
        # the exception edge.
        if not seen_acquire:
            return None
        if _tail(site.raw) in _SAFE_CALL_TAILS:
            return None
        return _Action(kind="risky", desc=f"{site.raw}()", **base)

    def _callee_events(
        self, site: CallSite, resource_tag: Optional[str]
    ) -> Set[str]:
        """Events a resolved callee applies to the passed resource."""
        if site.callee is None or resource_tag is None:
            return set()
        callee_fq = self.graph.resolve_callee(site)
        if callee_fq is None:
            return set()
        callee = self.index.functions.get(callee_fq)
        callee_effects = self.effects.get(callee_fq)
        if callee is None or not callee_effects:
            return set()
        events: Set[str] = set()
        for param, tag in _map_argument(
            site, callee, skip_self=callee.is_method
        ):
            if tag == resource_tag and param in callee_effects:
                events.update(callee_effects[param])
        return events

    # -- checks -----------------------------------------------------

    def _events_of(self, action: _Action) -> List[str]:
        if action.event is None:
            return []
        if action.kind == "multi-event":
            return action.event.split("+")
        return [action.event]

    def _state_at(
        self,
        resource: _Resource,
        upto: int,
        view: _Action,
        include_cleanup: bool,
    ) -> str:
        """Replay events before index ``upto`` as seen from ``view``."""
        state = "unacquired"
        for action in resource.actions[:upto]:
            if _exclusive(action.branch, view.branch):
                continue
            if action.cleanup and not include_cleanup and (
                not view.cleanup
            ):
                continue
            state = self._apply(state, action)
        return state

    def _apply(self, state: str, action: _Action) -> str:
        if action.kind == "acquire":
            return self.spec.initial
        for event in self._events_of(action):
            if event == DELEGATED:
                state = DELEGATED
                continue
            state = self.spec.transitions.get((state, event), state)
        return state

    def _trace(
        self, resource: _Resource, upto: int, view: _Action
    ) -> str:
        """Human-readable state-at-each-step trace for a finding."""
        steps: List[str] = []
        state = "unacquired"
        for action in resource.actions[:upto]:
            if _exclusive(action.branch, view.branch):
                continue
            if action.kind in ("risky", "use", "return") and (
                action.event is None
            ):
                continue
            if action.cleanup and not view.cleanup:
                continue
            state = self._apply(state, action)
            steps.append(f"L{action.line} {action.desc} [{state}]")
        return " -> ".join(steps) if steps else "(no prior steps)"

    def _has_cleanup_release(self, resource: _Resource) -> bool:
        for action in resource.actions:
            if not action.cleanup:
                continue
            events = self._events_of(action)
            if any(
                event in self.spec.releasing or event == DELEGATED
                for event in events
            ):
                return True
        return False

    def _check_resource(
        self,
        fq: str,
        function: FunctionSummary,
        path: str,
        resource: _Resource,
    ) -> Iterator[Violation]:
        spec = self.spec
        cleanup_release = self._has_cleanup_release(resource)
        reported_leak = False
        for position, action in enumerate(resource.actions):
            if action.kind in ("event", "multi-event", "use"):
                state = self._state_at(
                    resource, position, action, include_cleanup=False
                )
                events = self._events_of(action) or [USE]
                for event in events:
                    if event == DELEGATED:
                        continue
                    if (state, event) in spec.transitions:
                        state = spec.transitions[(state, event)]
                        continue
                    template = spec.errors.get((state, event))
                    if template is None:
                        continue
                    trace = self._trace(resource, position, action)
                    yield Violation(
                        path=path, line=action.line,
                        message=(
                            template.format(resource=spec.resource)
                            + f" at {action.desc}; trace: {trace}"
                        ),
                    )
            elif action.kind == "risky" and not action.cleanup:
                if reported_leak:
                    continue
                state = self._state_at(
                    resource, position, action, include_cleanup=False
                )
                if spec.is_accepting(state) or state == "unacquired":
                    continue
                protected = (
                    action.guarded or _broadly_caught(action.caught)
                ) and cleanup_release
                if protected:
                    continue
                trace = self._trace(resource, position, action)
                reported_leak = True
                yield Violation(
                    path=path, line=action.line,
                    message=(
                        f"{spec.resource} {resource.name!r} (acquired "
                        f"line {resource.acquire_line} via "
                        f"{resource.acquire_desc}) leaks if "
                        f"{action.desc} raises: no except/finally "
                        f"path releases it; trace: {trace}"
                    ),
                )
            elif action.kind == "return":
                if action.cleanup or action.event == DELEGATED:
                    continue
                if action.guarded and cleanup_release:
                    continue
                state = self._state_at(
                    resource, position, action, include_cleanup=False
                )
                if spec.is_accepting(state) or state == "unacquired":
                    continue
                if resource.self_stored or resource.escaped:
                    continue
                trace = self._trace(resource, position, action)
                yield Violation(
                    path=path, line=action.line,
                    message=(
                        f"early return while the {spec.resource} "
                        f"{resource.name!r} (acquired line "
                        f"{resource.acquire_line} via "
                        f"{resource.acquire_desc}) is still "
                        f"{state}; trace: {trace}"
                    ),
                )
        yield from self._check_exit(fq, function, path, resource)

    def _exit_state(self, resource: _Resource) -> str:
        """Optimistic end-of-function state (all events applied)."""
        state = "unacquired"
        for action in resource.actions:
            state = self._apply(state, action)
        return state

    def _check_exit(
        self,
        fq: str,
        function: FunctionSummary,
        path: str,
        resource: _Resource,
    ) -> Iterator[Violation]:
        spec = self.spec
        state = self._exit_state(resource)
        if spec.is_accepting(state) or state == "unacquired":
            return
        if resource.escaped or resource.returned or resource.delegated:
            return
        if resource.self_stored:
            if not spec.track_self_storage:
                return
            if self._class_releases(fq, function, resource):
                return
            yield Violation(
                path=path, line=resource.acquire_line,
                message=(
                    f"{spec.resource} stored as {resource.name!r} is "
                    f"never released: no sibling method closes it and "
                    f"no weakref.finalize is registered — the segment "
                    f"outlives the object"
                ),
            )
            return
        yield Violation(
            path=path, line=resource.acquire_line,
            message=(
                f"{spec.resource} {resource.name!r} acquired via "
                f"{resource.acquire_desc} is never released on any "
                f"path out of {function.name}()"
            ),
        )

    def _class_releases(
        self, fq: str, function: FunctionSummary, resource: _Resource
    ) -> bool:
        """Whether any sibling method retires a self-stored resource."""
        if not function.is_method or "." not in fq:
            return False
        class_fq = fq.rsplit(".", 1)[0]
        attr = resource.name.split(".", 1)[1]
        ref_tag = f"ref:{class_fq}.{attr}"
        receiver = f"self.{attr}"
        prefix = f"{class_fq}."
        for sibling_fq, sibling in self.index.functions.items():
            if not sibling_fq.startswith(prefix):
                continue
            for site in sibling.calls:
                site_receiver, tail = _receiver_and_tail(site.raw)
                if site_receiver == receiver and (
                    self.spec.event_for(tail) is not None
                ):
                    return True
                if ref_tag in site.args or ref_tag in (
                    site.kwargs.values()
                ):
                    if self._is_finalizer(site) or self._callee_events(
                        site, ref_tag
                    ):
                        return True
        return False
