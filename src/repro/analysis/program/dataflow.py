"""Forward data-flow fixpoints over the call graph.

Three interprocedural analyses, all computed as monotone fixpoints over
the function summaries (so they terminate on mutually recursive
modules and cost O(edges × lattice height)):

* **RNG-constructing parameters** — the set of parameters that flow
  (possibly through several calls) into an RNG construction
  (``ensure_rng``/``spawn_rngs``/``numpy.random.default_rng``).  SEED001
  uses it to spot hardcoded seeds and double-seeding across module
  boundaries.
* **Seam-reaching parameters** — parameters that flow into the
  callable slot of a worker-pool submit/``Process(target=…)`` seam.
  PKL001 uses it to flag lambdas/closures laundered through helpers.
* **Escaping exceptions** — for every function, the exception types
  that can propagate out of it, accounting for ``except`` clauses
  around each call and raise.  EXC001X proves public ``core``/
  ``runtime`` entry points only propagate ``repro.errors`` types.
"""

from __future__ import annotations

import builtins
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import CallGraph
from .symbols import CallSite, FunctionSummary, ProjectIndex

#: Fully qualified names that construct (or coerce into) a generator.
RNG_CONSTRUCTORS = frozenset({
    "repro.sampling.rng.ensure_rng",
    "repro.sampling.rng.spawn_rngs",
    "repro.sampling.ensure_rng",
    "repro.sampling.spawn_rngs",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
})

#: Keyword names that carry the seed into a constructor or callee.
SEED_KEYWORDS = ("rng", "seed")

#: Pool-method names whose first argument crosses the process seam.
SUBMIT_ATTRS = frozenset({
    "submit", "map", "starmap", "imap", "imap_unordered",
    "apply_async", "map_async", "starmap_async",
})

#: Constructors whose ``target=`` crosses the process seam.
PROCESS_CTORS = frozenset({"Process", "Thread"})


def is_rng_constructor(
    callee: Optional[str], index: ProjectIndex
) -> bool:
    """Whether a resolved callee mints or coerces a generator."""
    if callee is None:
        return False
    if callee in RNG_CONSTRUCTORS:
        return True
    resolved = index.resolve(callee)
    return resolved in RNG_CONSTRUCTORS


def seed_argument(site: CallSite) -> Optional[str]:
    """Provenance of the seed argument of a constructor call."""
    if site.args:
        return site.args[0]
    for keyword in SEED_KEYWORDS:
        if keyword in site.kwargs:
            return site.kwargs[keyword]
    return None


def submit_slot(site: CallSite) -> Optional[str]:
    """Provenance of the callable crossing a process seam, if any."""
    tail = site.raw.rsplit(".", 1)[-1]
    if tail in SUBMIT_ATTRS and "." in site.raw and site.args:
        return site.args[0]
    if tail in PROCESS_CTORS and "target" in site.kwargs:
        return site.kwargs["target"]
    return None


def _map_argument(
    site: CallSite, callee: FunctionSummary, skip_self: bool
) -> List[Tuple[str, str]]:
    """(callee parameter, provenance) pairs for a call site."""
    params = callee.params
    if skip_self and params and params[0] in ("self", "cls"):
        params = params[1:]
    pairs: List[Tuple[str, str]] = []
    for position, tag in enumerate(site.args):
        if position < len(params):
            pairs.append((params[position], tag))
    for name, tag in site.kwargs.items():
        if name in callee.params:
            pairs.append((name, tag))
    return pairs


def _param_fixpoint(
    index: ProjectIndex,
    graph: CallGraph,
    base: Dict[str, Set[str]],
) -> Dict[str, Set[str]]:
    """Propagate a parameter property backwards through call edges.

    ``base`` maps function → parameters with the property locally;
    the result adds parameters that flow into a property-carrying
    parameter of any (transitive) callee.
    """
    facts: Dict[str, Set[str]] = {
        fq: set(params) for fq, params in base.items()
    }
    worklist = list(facts)
    while worklist:
        changed_fq = worklist.pop()
        for caller in graph.callers_of(changed_fq):
            summary = index.functions.get(caller)
            if summary is None:
                continue
            caller_facts = facts.setdefault(caller, set())
            before = len(caller_facts)
            for callee_fq, site in graph.callees(caller):
                if callee_fq != changed_fq:
                    continue
                callee = index.functions[callee_fq]
                target_params = facts.get(callee_fq, set())
                for param, tag in _map_argument(
                    site, callee, skip_self=callee.is_method
                ):
                    if param in target_params and tag.startswith(
                        "param:"
                    ):
                        caller_facts.add(tag[len("param:"):])
            if len(caller_facts) != before:
                worklist.append(caller)
    return facts


def rng_constructing_params(
    index: ProjectIndex, graph: CallGraph
) -> Dict[str, Set[str]]:
    """function fq → parameters that reach an RNG construction."""
    base: Dict[str, Set[str]] = {}
    for fq, function in index.functions.items():
        for site in function.calls:
            if not is_rng_constructor(site.callee, index):
                continue
            tag = seed_argument(site)
            if tag is not None and tag.startswith("param:"):
                base.setdefault(fq, set()).add(tag[len("param:"):])
    return _param_fixpoint(index, graph, base)


def seam_reaching_params(
    index: ProjectIndex, graph: CallGraph
) -> Dict[str, Set[str]]:
    """function fq → parameters that reach a process-seam slot."""
    base: Dict[str, Set[str]] = {}
    for fq, function in index.functions.items():
        for site in function.calls:
            tag = submit_slot(site)
            if tag is not None and tag.startswith("param:"):
                base.setdefault(fq, set()).add(tag[len("param:"):])
    return _param_fixpoint(index, graph, base)


# -- exception flow -------------------------------------------------


def _builtin_ancestors() -> Dict[str, Set[str]]:
    """builtin exception name → its ancestor names (inclusive)."""
    table: Dict[str, Set[str]] = {}
    for name in dir(builtins):
        obj = getattr(builtins, name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            table[name] = {
                ancestor.__name__ for ancestor in obj.__mro__
                if issubclass(ancestor, BaseException)
            }
    return table


_BUILTIN_ANCESTORS = _builtin_ancestors()

#: Control-flow exceptions ``except Exception`` does not catch.
_NON_EXCEPTION = frozenset({
    "KeyboardInterrupt", "SystemExit", "GeneratorExit",
})


def _tail(name: str) -> str:
    return name.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class EscapeOrigin:
    """Where an escaping exception type is actually raised."""

    path: str
    line: int
    chain: Tuple[str, ...]


class ExceptionFlow:
    """Interprocedural escaping-exception sets (fixpoint)."""

    def __init__(self, index: ProjectIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph
        self._ancestor_cache: Dict[str, Set[str]] = {}
        self.escapes: Dict[str, Dict[str, EscapeOrigin]] = {}
        self._solve()

    def ancestors(self, exc: str) -> Set[str]:
        """Ancestor type names of ``exc`` (fq and bare forms)."""
        cached = self._ancestor_cache.get(exc)
        if cached is not None:
            return cached
        result: Set[str] = {exc, _tail(exc)}
        self._ancestor_cache[exc] = result  # cycle guard
        resolved = self.index.resolve(exc)
        if resolved is not None and resolved in self.index.classes:
            for link in self.index.class_mro_names(resolved):
                result.add(link)
                result.add(_tail(link))
                base_tail = _tail(link)
                if base_tail in _BUILTIN_ANCESTORS:
                    result |= _BUILTIN_ANCESTORS[base_tail]
        elif _tail(exc) in _BUILTIN_ANCESTORS:
            result |= _BUILTIN_ANCESTORS[_tail(exc)]
        return result

    def caught_by(self, caught: List[str], exc: str) -> bool:
        """Whether any enclosing handler catches ``exc``."""
        ancestry = self.ancestors(exc)
        for handler in caught:
            handler_tail = _tail(handler)
            if handler_tail == "BaseException":
                return True
            if handler_tail == "Exception":
                if _tail(exc) not in _NON_EXCEPTION:
                    return True
                continue
            if handler in ancestry or handler_tail in ancestry:
                return True
        return False

    def _solve(self) -> None:
        for fq, function in self.index.functions.items():
            local: Dict[str, EscapeOrigin] = {}
            path = self.index.paths.get(fq, "")
            for site in function.raises:
                if site.exc is None:
                    continue
                if self.caught_by(site.caught, site.exc):
                    continue
                local.setdefault(site.exc, EscapeOrigin(
                    path=path, line=site.line, chain=(fq,),
                ))
            self.escapes[fq] = local
        worklist = [fq for fq, esc in self.escapes.items() if esc]
        while worklist:
            changed = worklist.pop()
            for caller in self.graph.callers_of(changed):
                if self._propagate(caller, changed):
                    worklist.append(caller)

    def _propagate(self, caller: str, callee_fq: str) -> bool:
        caller_escapes = self.escapes.setdefault(caller, {})
        grew = False
        for target, site in self.graph.callees(caller):
            if target != callee_fq:
                continue
            for exc, origin in self.escapes.get(callee_fq, {}).items():
                if exc in caller_escapes:
                    continue
                if self.caught_by(site.caught, exc):
                    continue
                chain = (caller, *origin.chain)[:8]
                caller_escapes[exc] = EscapeOrigin(
                    path=origin.path, line=origin.line, chain=chain,
                )
                grew = True
        return grew
