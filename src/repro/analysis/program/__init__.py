"""Whole-program analysis: symbol table, call graph, data flow.

This package layers a project-wide model on top of the per-file linter:

* :mod:`~repro.analysis.program.symbols` — module summaries (an
  AST-free IR with argument provenance), the project symbol table, and
  re-export-aware name resolution, plus the on-disk summary cache;
* :mod:`~repro.analysis.program.callgraph` — the call/reference graph
  (methods, decorators, lambdas, ``functools.partial``);
* :mod:`~repro.analysis.program.dataflow` — forward taint fixpoints
  (RNG seed flow, process-seam flow, escaping exceptions);
* :mod:`~repro.analysis.program.program_rules` — the cross-module
  rules SEED001, PKL001, EXC001X, and DEAD001.

The :class:`Program` model built here is what
:class:`~repro.analysis.registry.ProgramRule` instances check.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from .callgraph import CallGraph
from .dataflow import (
    ExceptionFlow,
    rng_constructing_params,
    seam_reaching_params,
)
from .symbols import (
    CACHE_BASENAME,
    ModuleSummary,
    ProjectIndex,
    summarize_module,
)


class Program:
    """The whole-program model handed to program rules.

    Built from module summaries (freshly extracted or cache-loaded);
    the data-flow results are computed lazily so a ``--select`` run
    only pays for the analyses its rules actually use.
    """

    def __init__(
        self,
        summaries: Iterable[ModuleSummary],
        root: Optional[Path] = None,
    ) -> None:
        self.summaries: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.summaries[summary.path] = summary
        self.root = root
        self.index = ProjectIndex(self.summaries.values())
        self.graph = CallGraph(self.index)
        self._rng_params: Optional[Dict[str, Set[str]]] = None
        self._seam_params: Optional[Dict[str, Set[str]]] = None
        self._exceptions: Optional[ExceptionFlow] = None
        self._external_text: Optional[str] = None
        self._typestate: Dict[str, object] = {}
        self._concurrency: Optional[object] = None

    @property
    def rng_params(self) -> Dict[str, Set[str]]:
        """function fq → params flowing into an RNG construction."""
        if self._rng_params is None:
            self._rng_params = rng_constructing_params(
                self.index, self.graph
            )
        return self._rng_params

    @property
    def seam_params(self) -> Dict[str, Set[str]]:
        """function fq → params flowing into a process seam."""
        if self._seam_params is None:
            self._seam_params = seam_reaching_params(
                self.index, self.graph
            )
        return self._seam_params

    @property
    def exceptions(self) -> ExceptionFlow:
        """The interprocedural escaping-exception analysis."""
        if self._exceptions is None:
            self._exceptions = ExceptionFlow(self.index, self.graph)
        return self._exceptions

    def typestate(self, spec):
        """The (memoized) typestate analysis for one protocol spec.

        Memoization keeps the per-protocol effects fixpoint shared
        between the rules of one run, so ``--select SHM001,RES001``
        pays for each protocol once.
        """
        from .typestate import TypestateAnalysis

        cached = self._typestate.get(spec.name)
        if cached is None:
            cached = TypestateAnalysis(
                self.index, self.graph, spec, self.summaries
            )
            self._typestate[spec.name] = cached
        return cached

    def concurrency(self):
        """The (memoized) concurrency-safety analysis.

        Shared between LCK001/LCK002/LCK003/ATM001 so one run pays for
        the lock model and the acquisition fixpoint once.
        """
        from .concurrency import ConcurrencyAnalysis

        if self._concurrency is None:
            self._concurrency = ConcurrencyAnalysis(
                self.index, self.graph, self.summaries
            )
        return self._concurrency

    def path_of(self, fq: str) -> str:
        """Repo-relative path of a function/class, '' if unknown."""
        return self.index.paths.get(fq, "")

    def external_text(self) -> str:
        """Concatenated text of tests/docs/tools/benchmarks/examples.

        DEAD001 treats a textual mention outside ``src/`` (a test, a
        documented example, a tool) as a use, so deliberately-public
        API exercised only by the test suite is not reported dead.
        """
        if self._external_text is not None:
            return self._external_text
        chunks: List[str] = []
        if self.root is not None:
            targets = [
                *sorted((self.root / "tests").glob("**/*.py")),
                *sorted((self.root / "benchmarks").glob("**/*.py")),
                *sorted((self.root / "examples").glob("**/*.py")),
                *sorted((self.root / "tools").glob("**/*.py")),
                *sorted((self.root / "docs").glob("*.md")),
                self.root / "README.md",
            ]
            for target in targets:
                try:
                    chunks.append(target.read_text(encoding="utf-8"))
                except OSError:
                    continue
        self._external_text = "\n".join(chunks)
        return self._external_text


__all__ = [
    "CACHE_BASENAME",
    "CallGraph",
    "ExceptionFlow",
    "ModuleSummary",
    "Program",
    "ProjectIndex",
    "summarize_module",
]
