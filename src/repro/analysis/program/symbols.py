"""Project-wide symbol table: module summaries and name resolution.

This is the front end of the whole-program layer.  Each source file is
distilled into a :class:`ModuleSummary` — an AST-free intermediate
representation recording definitions, imports/re-exports, call sites
with argument *provenance*, raise sites with their enclosing ``except``
context, and module-level bindings.  The :class:`ProjectIndex` then
stitches summaries into one symbol table and resolves dotted names
across module boundaries (following ``__init__`` re-export chains), so
the call graph and the data-flow engine never need to re-open an AST.

Summaries are JSON-serialisable on purpose: the analyzer caches them
keyed by file content (``.repro-analysis-cache.json``), which is what
makes ``--diff`` runs touch only the changed files.

Provenance tags (the data-flow engine's value domain)::

    param:<name>    the value is a parameter of the enclosing function
    int:<value>     an integer literal (a *hardcoded seed* candidate)
    none            the literal ``None``
    literal         any other literal constant
    call:<fq>       the result of calling ``fq`` (``call:?`` unresolved)
    ref:<fq>        a reference to a resolved global (function, class,
                    or module-level binding)
    nested:<fq>     a reference to a function defined inside a function
    lambda:<line>   a lambda expression
    partial:<tag>   ``functools.partial`` over a value with tag ``tag``
    other           anything the tracker cannot classify
"""

from __future__ import annotations

import ast
import hashlib
import json
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Version stamp of the on-disk summary cache.  Format 4 added lock
#: contexts (``CallSite.locks``/``AccessSite.locks``) and attribute
#: access footprints for the concurrency rules.
CACHE_FORMAT = 4

#: Discriminator so arbitrary JSON files are rejected early.
CACHE_KIND = "repro-analysis-cache"

#: Default cache file name, created under the analysis root.
CACHE_BASENAME = ".repro-analysis-cache.json"


@dataclass
class CallSite:
    """One call expression inside a function (or at module level).

    Attributes:
        callee: Resolved dotted path of the callable, or ``None`` when
            the target is dynamic (e.g. a method on an object).
        raw: The textual dotted path as written (``pool.map``).
        line: 1-based source line.
        args: Provenance tag per positional argument.
        kwargs: Provenance tag per keyword argument.
        caught: Exception type names of every ``except`` clause
            wrapping this call, innermost try first.
        branch: Branch context (``"<line>:<arm>"`` per enclosing
            ``if``), used to treat mutually exclusive arms as such.
        target: Dotted name the call result is bound to (``shm``,
            ``self._shm``, a ``with ... as`` variable), when the call
            is the whole right-hand side of a simple assignment.  The
            typestate engine keys tracked resources on it.
        cleanup: Whether the call sits on an exception edge — inside
            a ``finally`` body or an ``except`` handler — and so runs
            even when the guarded region raises.
        guarded: Whether an enclosing ``try`` has a ``finally`` body,
            so cleanup code runs no matter how this call exits.
        locks: Lock context: one ``"<name>@<line>"`` entry per
            enclosing ``with <name>:`` block whose context expression
            is a plain name/attribute (``with self._lock:``), outermost
            first.  The ``@line`` suffix identifies the acquisition
            site, so two critical sections over the same lock are
            distinguishable regions.
    """

    callee: Optional[str]
    raw: str
    line: int
    args: List[str] = field(default_factory=list)
    kwargs: Dict[str, str] = field(default_factory=dict)
    caught: List[str] = field(default_factory=list)
    branch: List[str] = field(default_factory=list)
    target: Optional[str] = None
    cleanup: bool = False
    guarded: bool = False
    locks: List[str] = field(default_factory=list)


@dataclass
class AccessSite:
    """One attribute access rooted at ``self``/``cls``.

    The concurrency rules consume these as the *access footprint* of a
    method: which instance fields it reads and writes, and under which
    lock context.  Only depth-1 attributes are recorded
    (``self._tokens``, not ``self.a.b``); container mutations through a
    subscript (``self._entries[k] = v``, ``del self._pools[k]``) count
    as writes of the container attribute.

    Attributes:
        name: Dotted access as written (``self._tokens``).
        line: 1-based source line.
        write: Whether the access stores to (or deletes from) the
            attribute; plain loads are reads.
        locks: Lock context (see :class:`CallSite.locks`).
        branch: Branch context markers (see :class:`CallSite.branch`).
    """

    name: str
    line: int
    write: bool = False
    locks: List[str] = field(default_factory=list)
    branch: List[str] = field(default_factory=list)


@dataclass
class RaiseSite:
    """One ``raise`` statement.

    Attributes:
        exc: Resolved dotted name of the raised type (``None`` for a
            bare re-raise).
        line: 1-based source line.
        caught: Exception type names of enclosing ``except`` clauses.
        branch: Branch context markers (see :class:`CallSite.branch`).
    """

    exc: Optional[str]
    line: int
    caught: List[str] = field(default_factory=list)
    branch: List[str] = field(default_factory=list)


@dataclass
class ReturnSite:
    """One ``return`` statement (the typestate early-exit points).

    Attributes:
        tag: Provenance tag of the returned expression (``none`` for a
            bare ``return``).
        line: 1-based source line.
        branch: Branch context markers (see :class:`CallSite.branch`).
        cleanup: Whether the return sits inside a ``finally`` body or
            an ``except`` handler (an exception-edge exit).
        guarded: Whether an enclosing ``try`` has a ``finally`` body
            that still runs on the way out through this return.
    """

    tag: str
    line: int
    branch: List[str] = field(default_factory=list)
    cleanup: bool = False
    guarded: bool = False


@dataclass
class FunctionSummary:
    """One function, method, or nested function.

    ``qualname`` is the module-level qualified name (``Class.method``,
    ``outer.inner``); the fully qualified name is
    ``<module>.<qualname>``.
    """

    name: str
    qualname: str
    line: int
    end_line: int
    params: List[str] = field(default_factory=list)
    param_defaults: Dict[str, str] = field(default_factory=dict)
    decorators: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    returns: List[ReturnSite] = field(default_factory=list)
    accesses: List[AccessSite] = field(default_factory=list)
    refs: List[str] = field(default_factory=list)
    global_reads: List[str] = field(default_factory=list)
    is_method: bool = False
    is_nested: bool = False

    @property
    def is_public(self) -> bool:
        """Public by naming convention (dunders count as public)."""
        return not self.name.startswith("_") or (
            self.name.startswith("__") and self.name.endswith("__")
        )


@dataclass
class ClassSummary:
    """One class definition (methods live in ``functions``)."""

    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    decorators: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)


@dataclass
class ModuleSummary:
    """Everything the program layer keeps about one source file."""

    path: str
    module: str
    is_package: bool = False
    functions: List[FunctionSummary] = field(default_factory=list)
    classes: List[ClassSummary] = field(default_factory=list)
    reexports: Dict[str, str] = field(default_factory=dict)
    star_imports: List[str] = field(default_factory=list)
    bindings: Dict[str, str] = field(default_factory=dict)
    all_names: Optional[List[str]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        """Rebuild a summary parsed from the cache file."""
        functions = [
            FunctionSummary(
                **{
                    **f,  # type: ignore[dict-item]
                    "calls": [CallSite(**c) for c in f["calls"]],
                    "raises": [RaiseSite(**r) for r in f["raises"]],
                    "returns": [
                        ReturnSite(**r) for r in f.get("returns", [])
                    ],
                    "accesses": [
                        AccessSite(**a) for a in f.get("accesses", [])
                    ],
                }
            )
            for f in data.get("functions", [])  # type: ignore[union-attr]
        ]
        classes = [
            ClassSummary(**c)
            for c in data.get("classes", [])  # type: ignore[union-attr]
        ]
        return cls(
            path=str(data["path"]),
            module=str(data["module"]),
            is_package=bool(data.get("is_package", False)),
            functions=functions,
            classes=classes,
            reexports=dict(data.get("reexports", {})),  # type: ignore[arg-type]
            star_imports=list(data.get("star_imports", [])),  # type: ignore[arg-type]
            bindings=dict(data.get("bindings", {})),  # type: ignore[arg-type]
            all_names=(
                list(data["all_names"])  # type: ignore[arg-type]
                if data.get("all_names") is not None else None
            ),
        )


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/core/ols.py`` → ``repro.core.ols``;
    ``src/repro/core/__init__.py`` → ``repro.core``.  Trees without a
    ``src/`` prefix (test fixtures) map the same way from their root.
    """
    parts = list(Path(rel_path).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf == "__init__.py":
        parts = parts[:-1]
    elif leaf.endswith(".py"):
        parts[-1] = leaf[:-3]
    return ".".join(parts)


def _resolve_relative(
    module: str, is_package: bool, level: int, target: str
) -> str:
    """Absolute module path of a ``from ..x import`` source module."""
    if level == 0:
        return target
    parts = module.split(".") if module else []
    if not is_package and parts:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: max(0, len(parts) - (level - 1))]
    base = ".".join(parts)
    if target:
        return f"{base}.{target}" if base else target
    return base


class _Resolver:
    """Best-effort dotted-name resolution inside one module."""

    def __init__(
        self,
        module: str,
        is_package: bool,
        definitions: Dict[str, str],
    ) -> None:
        self.module = module
        self.is_package = is_package
        #: local name → kind ("func" | "class" | "const")
        self.definitions = definitions
        #: local alias → absolute module path (``import x as y``)
        self.aliases: Dict[str, str] = {}
        #: local name → absolute dotted source (``from m import n``)
        self.froms: Dict[str, str] = {}

    def add_import(self, node: ast.Import) -> None:
        for name in node.names:
            if name.asname is not None:
                self.aliases[name.asname] = name.name
            else:
                root = name.name.split(".", 1)[0]
                self.aliases[root] = root

    def add_import_from(self, node: ast.ImportFrom) -> List[str]:
        """Record a from-import; returns star-imported modules."""
        source = _resolve_relative(
            self.module, self.is_package, node.level, node.module or ""
        )
        stars: List[str] = []
        for name in node.names:
            if name.name == "*":
                stars.append(source)
                continue
            local = name.asname or name.name
            self.froms[local] = (
                f"{source}.{name.name}" if source else name.name
            )
        return stars

    def child(self) -> "_Resolver":
        """A function-local resolver layered over this one."""
        clone = _Resolver(self.module, self.is_package, self.definitions)
        clone.aliases = dict(self.aliases)
        clone.froms = dict(self.froms)
        return clone

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Absolute dotted path for ``dotted``, or ``None``.

        Unknown bare names resolve to themselves (so builtins like
        ``open`` or ``ValueError`` keep their textual identity); names
        rooted in an unknown *local* stay unresolved.
        """
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.froms:
            base = self.froms[head]
            return f"{base}.{rest}" if rest else base
        if head in self.aliases:
            base = self.aliases[head]
            return f"{base}.{rest}" if rest else base
        if head in self.definitions:
            base = f"{self.module}.{head}" if self.module else head
            return f"{base}.{rest}" if rest else base
        if "." not in dotted:
            return dotted
        return None


def _dotted(node: ast.expr) -> Optional[str]:
    """Textual dotted path of a Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FunctionExtractor:
    """Walks one function body and fills a :class:`FunctionSummary`."""

    def __init__(
        self,
        summary: FunctionSummary,
        resolver: _Resolver,
        owner: "_ModuleExtractor",
        class_name: Optional[str],
    ) -> None:
        self.summary = summary
        self.resolver = resolver
        self.owner = owner
        self.class_name = class_name
        #: local variable → provenance tag
        self.env: Dict[str, str] = {}
        self.params = set(summary.params)
        self.global_reads: Set[str] = set()
        self.refs: Set[str] = set()

    # -- provenance -------------------------------------------------

    def provenance(self, node: ast.expr) -> str:
        """The provenance tag of an expression (see module docstring)."""
        if isinstance(node, ast.Constant):
            if node.value is None:
                return "none"
            if isinstance(node.value, bool):
                return "literal"
            if isinstance(node.value, int):
                return f"int:{node.value}"
            return "literal"
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.params:
                return f"param:{node.id}"
            return self._name_provenance(node.id)
        if isinstance(node, ast.Lambda):
            return f"lambda:{node.lineno}"
        if isinstance(node, ast.Call):
            callee = self._resolve_expr(node.func)
            if callee == "functools.partial" and node.args:
                return f"partial:{self.provenance(node.args[0])}"
            return f"call:{callee}" if callee else "call:?"
        if isinstance(node, ast.Attribute):
            resolved = self._resolve_expr(node)
            if resolved is not None:
                return f"ref:{resolved}"
            return "other"
        return "other"

    def _name_provenance(self, name: str) -> str:
        resolved = self.resolver.resolve(name)
        if resolved == name:
            # Unknown bare name: a closure-visible nested function, or
            # a builtin (``open``, ``ValueError``) kept by its text.
            nested = self.owner.nested_names.get(name)
            if nested is not None:
                return f"nested:{nested}"
            return f"ref:{name}"
        if resolved is None:
            return "other"
        return f"ref:{resolved}"

    def _qualify(self, name: str) -> str:
        module = self.resolver.module
        return f"{module}.{name}" if module else name

    def _resolve_expr(self, node: ast.expr) -> Optional[str]:
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and self.class_name and rest:
            return self._qualify(f"{self.class_name}.{rest}")
        if head in self.env:
            tag = self.env[head]
            if tag.startswith("ref:") and rest:
                return f"{tag[4:]}.{rest}"
            if tag.startswith("ref:"):
                return tag[4:]
            if tag.startswith("nested:"):
                inner = tag[len("nested:"):]
                return f"{inner}.{rest}" if rest else inner
            return None
        return self.resolver.resolve(dotted)

    # -- statement walk ---------------------------------------------

    def walk(
        self,
        stmts: Sequence[ast.stmt],
        caught: Tuple[str, ...],
        branch: Tuple[str, ...],
        cleanup: bool = False,
        guarded: bool = False,
        locks: Tuple[str, ...] = (),
    ) -> None:
        for stmt in stmts:
            self._statement(stmt, caught, branch, cleanup, guarded,
                            locks)

    def _statement(
        self,
        stmt: ast.stmt,
        caught: Tuple[str, ...],
        branch: Tuple[str, ...],
        cleanup: bool = False,
        guarded: bool = False,
        locks: Tuple[str, ...] = (),
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.owner.extract_function(
                stmt,
                parent_qualname=self.summary.qualname,
                resolver=self.resolver,
                class_name=None,
                is_nested=True,
            )
            fq = self.owner.fq(f"{self.summary.qualname}.{stmt.name}")
            self.env[stmt.name] = f"nested:{fq}"
            return
        if isinstance(stmt, ast.ClassDef):
            # Local classes are rare; record reference traffic only.
            for expr in ast.walk(stmt):
                if isinstance(expr, ast.Call):
                    self._call(expr, caught, branch, cleanup, guarded,
                               locks)
            return
        if isinstance(stmt, ast.Import):
            self.resolver.add_import(stmt)
            return
        if isinstance(stmt, ast.ImportFrom):
            self.resolver.add_import_from(stmt)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                self._record_target(target, branch, locks)
            if value is not None:
                first = len(self.summary.calls)
                self._expressions(value, caught, branch, cleanup,
                                  guarded, locks)
                tag = self.provenance(value)
                if (
                    isinstance(value, ast.Call)
                    and not isinstance(stmt, ast.AugAssign)
                    and first < len(self.summary.calls)
                    and targets
                ):
                    # ast.walk visits the outer node first, so the
                    # site at ``first`` is the whole right-hand side.
                    bound = _dotted(targets[0])
                    if bound is not None:
                        self.summary.calls[first].target = bound
                for target in targets:
                    if isinstance(target, ast.Name) and not isinstance(
                        stmt, ast.AugAssign
                    ):
                        self.env[target.id] = tag
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for element in target.elts:
                            if isinstance(element, ast.Name):
                                self.env[element.id] = "other"
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expressions(stmt.exc, caught, branch, cleanup,
                                  guarded, locks)
            name = None
            if stmt.exc is not None:
                target = (
                    stmt.exc.func
                    if isinstance(stmt.exc, ast.Call) else stmt.exc
                )
                name = self._resolve_expr(target)
            self.summary.raises.append(
                RaiseSite(
                    exc=name, line=stmt.lineno,
                    caught=list(caught), branch=list(branch),
                )
            )
            return
        if isinstance(stmt, ast.Return):
            tag = "none"
            if stmt.value is not None:
                self._expressions(stmt.value, caught, branch, cleanup,
                                  guarded, locks)
                tag = self.provenance(stmt.value)
            self.summary.returns.append(
                ReturnSite(
                    tag=tag, line=stmt.lineno,
                    branch=list(branch), cleanup=cleanup,
                    guarded=guarded,
                )
            )
            return
        if isinstance(stmt, ast.Try):
            handler_types = self._handler_types(stmt)
            shielded = guarded or bool(stmt.finalbody)
            self.walk(
                stmt.body, caught + tuple(handler_types), branch,
                cleanup, shielded, locks,
            )
            for handler in stmt.handlers:
                self.walk(handler.body, caught, branch, True, shielded,
                          locks)
            self.walk(stmt.orelse, caught, branch, cleanup, shielded,
                      locks)
            self.walk(stmt.finalbody, caught, branch, True, guarded,
                      locks)
            return
        if isinstance(stmt, ast.If):
            self._expressions(stmt.test, caught, branch, cleanup,
                              guarded, locks)
            marker = f"{stmt.lineno}:{stmt.col_offset}"
            self.walk(
                stmt.body, caught, branch + (f"{marker}:0",),
                cleanup, guarded, locks,
            )
            self.walk(
                stmt.orelse, caught, branch + (f"{marker}:1",),
                cleanup, guarded, locks,
            )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expressions(stmt.iter, caught, branch, cleanup,
                              guarded, locks)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = "other"
            self.walk(stmt.body, caught, branch, cleanup, guarded,
                      locks)
            self.walk(stmt.orelse, caught, branch, cleanup, guarded,
                      locks)
            return
        if isinstance(stmt, ast.While):
            self._expressions(stmt.test, caught, branch, cleanup,
                              guarded, locks)
            self.walk(stmt.body, caught, branch, cleanup, guarded,
                      locks)
            self.walk(stmt.orelse, caught, branch, cleanup, guarded,
                      locks)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = locks
            for item in stmt.items:
                first = len(self.summary.calls)
                self._expressions(item.context_expr, caught, branch,
                                  cleanup, guarded, inner)
                if item.optional_vars is not None and isinstance(
                    item.context_expr, ast.Call
                ) and first < len(self.summary.calls):
                    bound = _dotted(item.optional_vars)
                    if bound is not None:
                        self.summary.calls[first].target = bound
                if isinstance(item.optional_vars, ast.Name):
                    self.env[item.optional_vars.id] = self.provenance(
                        item.context_expr
                    )
                if not isinstance(item.context_expr, ast.Call):
                    # ``with <name>:`` over a plain name/attribute is
                    # (in this codebase) a lock acquisition; the body
                    # runs with it held.  The @line suffix names the
                    # acquisition site, making this critical section a
                    # distinct region.
                    held = _dotted(item.context_expr)
                    if held is not None:
                        inner = inner + (f"{held}@{stmt.lineno}",)
            self.walk(stmt.body, caught, branch, cleanup, guarded,
                      inner)
            return
        if isinstance(stmt, ast.Match):
            self._expressions(stmt.subject, caught, branch, cleanup,
                              guarded, locks)
            for case in stmt.cases:
                self.walk(case.body, caught, branch, cleanup, guarded,
                          locks)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expressions(child, caught, branch, cleanup,
                                  guarded, locks)

    def _handler_types(self, stmt: ast.Try) -> List[str]:
        names: List[str] = []
        for handler in stmt.handlers:
            if handler.type is None:
                names.append("BaseException")
            elif isinstance(handler.type, ast.Tuple):
                for element in handler.type.elts:
                    resolved = self._resolve_expr(element)
                    if resolved is not None:
                        names.append(resolved)
            else:
                resolved = self._resolve_expr(handler.type)
                if resolved is not None:
                    names.append(resolved)
        return names

    def _expressions(
        self,
        expr: ast.expr,
        caught: Tuple[str, ...],
        branch: Tuple[str, ...],
        cleanup: bool = False,
        guarded: bool = False,
        locks: Tuple[str, ...] = (),
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._call(node, caught, branch, cleanup, guarded,
                           locks)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                self._reference(node.id)
            elif isinstance(node, ast.Attribute):
                self._access(
                    node,
                    write=isinstance(node.ctx, (ast.Store, ast.Del)),
                    branch=branch, locks=locks,
                )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Del
            ):
                # ``del self._pools[key]`` mutates the container.
                self._access(node.value, write=True, branch=branch,
                             locks=locks)

    def _access(
        self,
        node: ast.expr,
        write: bool,
        branch: Tuple[str, ...],
        locks: Tuple[str, ...],
    ) -> None:
        """Record a ``self``/``cls`` attribute access footprint."""
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        ):
            return
        self.summary.accesses.append(AccessSite(
            name=f"{node.value.id}.{node.attr}",
            line=node.lineno,
            write=write,
            locks=list(locks),
            branch=list(branch),
        ))

    def _record_target(
        self,
        target: ast.expr,
        branch: Tuple[str, ...],
        locks: Tuple[str, ...],
    ) -> None:
        """Record assignment-target writes (targets are not walked)."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, branch, locks)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value, branch, locks)
            return
        node: ast.expr = target
        if isinstance(node, ast.Subscript):
            node = node.value
        self._access(node, write=True, branch=branch, locks=locks)

    def _reference(self, name: str) -> None:
        if name in self.env or name in self.params:
            return
        if name in self.resolver.definitions:
            self.global_reads.add(name)
        tag = self._name_provenance(name)
        if tag.startswith(("ref:", "nested:")):
            target = tag.split(":", 1)[1]
            if "." in target:
                self.refs.add(target)

    def _call(
        self,
        node: ast.Call,
        caught: Tuple[str, ...],
        branch: Tuple[str, ...],
        cleanup: bool = False,
        guarded: bool = False,
        locks: Tuple[str, ...] = (),
    ) -> None:
        raw = _dotted(node.func) or f"<{type(node.func).__name__}>"
        callee = self._resolve_expr(node.func)
        site = CallSite(
            callee=callee,
            raw=raw,
            line=node.lineno,
            args=[
                self.provenance(arg)
                for arg in node.args
                if not isinstance(arg, ast.Starred)
            ],
            kwargs={
                kw.arg: self.provenance(kw.value)
                for kw in node.keywords
                if kw.arg is not None
            },
            caught=list(caught),
            branch=list(branch),
            cleanup=cleanup,
            guarded=guarded,
            locks=list(locks),
        )
        self.summary.calls.append(site)

    def finish(self) -> None:
        self.summary.refs = sorted(self.refs)
        self.summary.global_reads = sorted(self.global_reads)


class _ModuleExtractor:
    """Distils one parsed module into a :class:`ModuleSummary`."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.summary = ModuleSummary(
            path=path,
            module=module_name_for(path),
            is_package=Path(path).name == "__init__.py",
        )
        self.tree = tree
        definitions: Dict[str, str] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                definitions[node.name] = "func"
            elif isinstance(node, ast.ClassDef):
                definitions[node.name] = "class"
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        definitions[target.id] = "const"
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                definitions[node.target.id] = "const"
        self.resolver = _Resolver(
            self.summary.module, self.summary.is_package, definitions
        )
        #: nested function local name → fully qualified name (best
        #: effort; used for closure provenance).
        self.nested_names: Dict[str, str] = {}

    def fq(self, qualname: str) -> str:
        module = self.summary.module
        return f"{module}.{qualname}" if module else qualname

    def extract(self) -> ModuleSummary:
        # Pass 1: imports (so forward references resolve).
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                self.resolver.add_import(node)
            elif isinstance(node, ast.ImportFrom):
                stars = self.resolver.add_import_from(node)
                self.summary.star_imports.extend(stars)
        self.summary.reexports = dict(self.resolver.froms)

        # Pass 2: definitions and module-level statements.  Module-level
        # code is summarised as a synthetic "<module>" function so its
        # calls/references participate in the graph (it runs at import).
        last = self.tree.body[-1] if self.tree.body else None
        module_fn = FunctionSummary(
            name="<module>", qualname="<module>", line=1,
            end_line=(
                getattr(last, "end_lineno", 1) or 1
            ) if last is not None else 1,
        )
        module_walker = _FunctionExtractor(
            module_fn, self.resolver, self, class_name=None
        )
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.extract_function(
                    node, parent_qualname=None,
                    resolver=self.resolver, class_name=None,
                )
            elif isinstance(node, ast.ClassDef):
                self._extract_class(node)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            else:
                if isinstance(node, ast.Assign):
                    self._module_binding(node)
                module_walker._statement(node, (), ())
        module_walker.finish()
        self.summary.functions.append(module_fn)
        return self.summary

    def _module_binding(self, node: ast.Assign) -> None:
        prov_source = _FunctionExtractor(
            FunctionSummary(
                name="<binding>", qualname="<binding>", line=0, end_line=0
            ),
            self.resolver, self, class_name=None,
        )
        tag = prov_source.provenance(node.value)
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "__all__" and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                self.summary.all_names = [
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
                continue
            self.summary.bindings[target.id] = tag

    def _extract_class(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            resolved = self.resolver.resolve(_dotted(base))
            if resolved is not None:
                bases.append(resolved)
        decorators = []
        for decorator in node.decorator_list:
            target = (
                decorator.func
                if isinstance(decorator, ast.Call) else decorator
            )
            resolved = self.resolver.resolve(_dotted(target))
            if resolved is not None:
                decorators.append(resolved)
        methods = [
            child.name for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        self.summary.classes.append(ClassSummary(
            name=node.name, line=node.lineno, bases=bases,
            decorators=decorators, methods=methods,
        ))
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.extract_function(
                    child, parent_qualname=node.name,
                    resolver=self.resolver, class_name=node.name,
                    is_method=True,
                )

    def extract_function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        parent_qualname: Optional[str],
        resolver: _Resolver,
        class_name: Optional[str],
        is_method: bool = False,
        is_nested: bool = False,
    ) -> None:
        qualname = (
            f"{parent_qualname}.{node.name}"
            if parent_qualname else node.name
        )
        if is_nested:
            self.nested_names[node.name] = self.fq(qualname)
        params = [arg.arg for arg in (
            *node.args.posonlyargs, *node.args.args,
            *node.args.kwonlyargs,
        )]
        if node.args.vararg is not None:
            params.append(node.args.vararg.arg)
        if node.args.kwarg is not None:
            params.append(node.args.kwarg.arg)
        summary = FunctionSummary(
            name=node.name,
            qualname=qualname,
            line=node.lineno,
            end_line=getattr(node, "end_lineno", node.lineno)
            or node.lineno,
            params=params,
            is_method=is_method,
            is_nested=is_nested,
        )
        local = resolver.child()
        walker = _FunctionExtractor(summary, local, self, class_name)
        positional = [*node.args.posonlyargs, *node.args.args]
        defaults = node.args.defaults
        for arg, default in zip(
            positional[len(positional) - len(defaults):], defaults
        ):
            summary.param_defaults[arg.arg] = walker.provenance(default)
        for arg, kw_default in zip(
            node.args.kwonlyargs, node.args.kw_defaults
        ):
            if kw_default is not None:
                summary.param_defaults[arg.arg] = walker.provenance(
                    kw_default
                )
        for decorator in node.decorator_list:
            target = (
                decorator.func
                if isinstance(decorator, ast.Call) else decorator
            )
            resolved = local.resolve(_dotted(target))
            if resolved is not None:
                summary.decorators.append(resolved)
        walker.walk(node.body, (), ())
        walker.finish()
        self.summary.functions.append(summary)


def summarize_module(path: str, tree: ast.Module) -> ModuleSummary:
    """Distil a parsed module into its :class:`ModuleSummary`."""
    return _ModuleExtractor(path, tree).extract()


class ProjectIndex:
    """The project-wide symbol table over a set of module summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        self.classes: Dict[str, ClassSummary] = {}
        #: fully qualified function name → repo-relative path
        self.paths: Dict[str, str] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
            for function in summary.functions:
                fq = (
                    f"{summary.module}.{function.qualname}"
                    if summary.module else function.qualname
                )
                self.functions[fq] = function
                self.paths[fq] = summary.path
            for cls in summary.classes:
                fq = (
                    f"{summary.module}.{cls.name}"
                    if summary.module else cls.name
                )
                self.classes[fq] = cls
                self.paths[fq] = summary.path

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Canonical definition site of ``dotted``, following
        re-export chains (``from .estimation import estimate`` in an
        ``__init__`` makes ``pkg.estimate`` resolve to
        ``pkg.estimation.estimate``).  Returns ``None`` for names the
        project does not define.
        """
        return self._resolve(dotted, guard=set())

    def _resolve(
        self, dotted: Optional[str], guard: Set[str]
    ) -> Optional[str]:
        if dotted is None or dotted in guard:
            return None
        guard.add(dotted)
        if dotted in self.functions or dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            summary = self.modules.get(module)
            if summary is None:
                continue
            rest = parts[split:]
            head, tail = rest[0], rest[1:]
            if head in summary.reexports:
                target = summary.reexports[head]
                chained = ".".join([target, *tail])
                resolved = self._resolve(chained, guard)
                if resolved is not None:
                    return resolved
            for star in summary.star_imports:
                chained = ".".join([star, *rest])
                resolved = self._resolve(chained, guard)
                if resolved is not None:
                    return resolved
            break
        return None

    def function_at(self, fq: str) -> Optional[FunctionSummary]:
        """The function summary for a (resolved) qualified name."""
        resolved = self.resolve(fq)
        if resolved is None:
            return None
        return self.functions.get(resolved)

    def class_mro_names(self, fq: str) -> List[str]:
        """Base-class chain names for a project class (best effort)."""
        names: List[str] = []
        seen: Set[str] = set()
        queue = [fq]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            names.append(current)
            cls = self.classes.get(current)
            if cls is None:
                resolved = self.resolve(current)
                cls = (
                    self.classes.get(resolved)
                    if resolved is not None else None
                )
                if resolved is not None and resolved not in seen:
                    names.append(resolved)
            if cls is not None:
                queue.extend(cls.bases)
        return names


# -- summary cache --------------------------------------------------


def file_digest(data: bytes) -> str:
    """Content digest used to key cached summaries."""
    return hashlib.sha256(data).hexdigest()[:24]


def load_cache(path: Path) -> Dict[str, Dict[str, object]]:
    """Cached summary entries keyed by repo-relative path.

    A missing, unreadable, or malformed cache is simply an empty one —
    the cache is a pure accelerator and never an input.  A *valid*
    cache written by an older analyzer (a ``CACHE_FORMAT`` bump) is
    also discarded wholesale, but with a one-line notice: silently
    re-deriving every summary looks like a hung run on large trees.
    """
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if (
        not isinstance(document, dict)
        or document.get("kind") != CACHE_KIND
        or not isinstance(document.get("files"), dict)
    ):
        return {}
    if document.get("format") != CACHE_FORMAT:
        print(
            f"repro.analysis: discarding summary cache {path.name} "
            f"written by an older analyzer (format "
            f"{document.get('format')!r}, current {CACHE_FORMAT}); "
            f"all summaries will be re-derived once",
            file=sys.stderr,
        )
        return {}
    return document["files"]


def save_cache(
    path: Path, entries: Dict[str, Dict[str, object]]
) -> None:
    """Persist summary cache entries (best effort; failures ignored)."""
    document = {
        "format": CACHE_FORMAT,
        "kind": CACHE_KIND,
        "files": entries,
    }
    try:
        path.write_text(
            json.dumps(document, sort_keys=True), encoding="utf-8"
        )
    except OSError:
        pass


def cache_entry(
    stat_size: int,
    stat_mtime_ns: int,
    digest: str,
    summary: ModuleSummary,
) -> Dict[str, object]:
    """One cache record for :func:`save_cache`."""
    return {
        "size": stat_size,
        "mtime_ns": stat_mtime_ns,
        "sha": digest,
        "summary": summary.to_dict(),
    }
