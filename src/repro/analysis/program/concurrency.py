"""Concurrency-safety analysis over the module-summary IR.

The service layer (PRs 6–7) made the hot path genuinely concurrent:
``threading.Lock``-protected state machines in ``repro.service`` plus a
cross-process shared-memory seam.  This pass machine-checks the lock
discipline that keeps them correct under contention, from the lock
contexts (``CallSite.locks``/``AccessSite.locks``) and attribute access
footprints the extractor records:

* **LCK001** guarded-by inference — a field *written* while a lock of
  its own class is held is inferred guarded by that lock; every other
  read or write of it (public methods, private helpers called without
  the lock, nested callbacks) is a torn-state hazard.
* **LCK002** lock-order cycles — the may-hold-while-acquiring graph
  across classes and modules (interprocedural: acquisition effects
  propagate over the call graph, with ``self.<attr>.<method>()``
  receivers resolved through constructor assignments).  A cycle means
  two threads can deadlock by taking the same locks in opposite
  orders; findings carry a witness trace naming each edge's site.
* **LCK003** blocking while holding — sleeps (including injected
  ``self._sleep`` clocks), worker-pool submits, subprocess spawns,
  file I/O, and shared-memory/worker-pool publication reached while a
  lock is held, directly or through resolvable callees.  A blocking
  call under a lock stalls every thread contending for it.
* **ATM001** check-then-act atomicity — a guarded read whose lock is
  released before a later critical section over the *same* lock writes
  the same field, without re-reading it first.  The check is stale by
  the time the write lands unless the second section re-checks.

Scope and honesty: lock identity is tracked for ``with`` blocks over
plain attribute or module-level names (``with self._lock:``,
``with _LOCK:``) — locks fetched from containers or passed as values
are invisible, as are fields accessed through any receiver other than
``self``/``cls``.  The rules therefore protect the discipline the
service layer actually uses; ``docs/static-analysis.md`` documents the
limits.

Findings embed a lock-trace (acquire sites → access site) in the
message, mirroring the typestate trace format, so a SARIF consumer can
replay how the lock state was reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..registry import ProgramRule, register
from . import Program
from .callgraph import CallGraph
from .dataflow import SUBMIT_ATTRS, _tail
from .symbols import (
    AccessSite,
    CallSite,
    FunctionSummary,
    ModuleSummary,
    ProjectIndex,
)
from .typestate import _exclusive

#: Callables that construct a lock when assigned to an attribute.
LOCK_CTOR_TAILS = frozenset({"Lock", "RLock"})

#: Call tails that block the calling thread outright.
_SLEEP_TAILS = frozenset({"sleep", "_sleep"})
_SUBPROCESS_TAILS = frozenset(
    {"run", "call", "check_call", "check_output", "Popen"}
)
_FILE_IO_TAILS = frozenset(
    {"open", "read_text", "write_text", "read_bytes", "write_bytes"}
)
_PUBLISH_TAILS = frozenset(
    {"SharedMemory", "publish_graph", "WorkerPool"}
)


@dataclass(frozen=True)
class Violation:
    """One concurrency violation, ready to become a finding."""

    path: str
    line: int
    message: str


@dataclass(frozen=True)
class LockHold:
    """One lock held at a site: canonical id + acquisition point."""

    lock: str  # canonical id, e.g. "repro.service.cache.ResultCache._lock"
    attr: str  # as written at the acquisition, e.g. "self._lock"
    line: int  # line of the acquiring ``with`` statement


def _short(lock: str) -> str:
    """Human name of a lock id (``ResultCache._lock``)."""
    return ".".join(lock.rsplit(".", 2)[-2:])


class ConcurrencyAnalysis:
    """Shared substrate for the four concurrency rules.

    Built once per :class:`~repro.analysis.program.Program` (memoized
    by :meth:`Program.concurrency`), so ``--select LCK001,LCK002`` pays
    for the lock model and the acquisition fixpoint once.
    """

    def __init__(
        self,
        index: ProjectIndex,
        graph: CallGraph,
        summaries: Dict[str, ModuleSummary],
    ) -> None:
        self.index = index
        self.graph = graph
        self.summaries = summaries
        #: class fq → lock-typed attribute names
        self.lock_fields: Dict[str, Set[str]] = {}
        #: module → module-level lock binding names
        self.module_locks: Dict[str, Set[str]] = {}
        #: (class fq, attribute) → class fq of the constructed value
        self.attr_types: Dict[Tuple[str, str], str] = {}
        #: function fq → owning class fq (methods and their nested fns)
        self.owner_class: Dict[str, str] = {}
        self._build_lock_model()
        self._escaping = self._escaping_methods()
        #: guarded-helper fixpoint: method fq → the lock its callers
        #: always hold (its body runs lock-held without acquiring).
        self.helper_lock = self._infer_helpers()
        self._acquires: Optional[Dict[str, Set[str]]] = None
        self._blocking: Optional[Dict[str, Tuple[int, str]]] = None

    # -- model construction -----------------------------------------

    def _build_lock_model(self) -> None:
        for summary in self.summaries.values():
            module = summary.module
            class_names = {cls.name for cls in summary.classes}
            for function in summary.functions:
                fq = (
                    f"{module}.{function.qualname}"
                    if module else function.qualname
                )
                head = function.qualname.split(".", 1)[0]
                if head in class_names:
                    self.owner_class[fq] = (
                        f"{module}.{head}" if module else head
                    )
                for site in function.calls:
                    if site.target is None:
                        continue
                    tail = _tail(site.callee or site.raw)
                    if tail in LOCK_CTOR_TAILS:
                        self._record_lock(module, fq, site.target)
                        continue
                    owner = self.owner_class.get(fq)
                    if owner is None:
                        continue
                    if not site.target.startswith(("self.", "cls.")):
                        continue
                    attr = site.target.split(".", 1)[1]
                    if "." in attr:
                        continue
                    resolved = self.index.resolve(site.callee)
                    if resolved in self.index.classes:
                        self.attr_types[(owner, attr)] = resolved

    def _record_lock(self, module: str, fq: str, target: str) -> None:
        if target.startswith(("self.", "cls.")):
            attr = target.split(".", 1)[1]
            owner = self.owner_class.get(fq)
            if owner is not None and "." not in attr:
                self.lock_fields.setdefault(owner, set()).add(attr)
        elif "." not in target:
            self.module_locks.setdefault(module, set()).add(target)

    def _lock_id(
        self, name: str, owner: Optional[str], module: str
    ) -> Optional[str]:
        """Canonical lock id of a dotted name at an acquisition site."""
        if name.startswith(("self.", "cls.")):
            attr = name.split(".", 1)[1]
            if owner is not None and attr in self.lock_fields.get(
                owner, ()
            ):
                return f"{owner}.{attr}"
            return None
        if "." not in name and name in self.module_locks.get(
            module, ()
        ):
            return f"{module}.{name}"
        return None

    def _module_of(self, fq: str) -> str:
        function = self.index.functions.get(fq)
        if function is None:
            return ""
        qualname = function.qualname
        if fq.endswith(f".{qualname}"):
            return fq[: -len(qualname) - 1]
        return "" if fq == qualname else fq

    def held_at(
        self, fq: str, locks: List[str]
    ) -> List[LockHold]:
        """Resolved locks held at a site inside ``fq``.

        Includes the caller-held lock of a guarded helper: a private
        method whose every intra-class call site holds the class lock
        runs lock-held even though its own body never acquires.
        """
        owner = self.owner_class.get(fq)
        module = self._module_of(fq)
        holds: List[LockHold] = []
        for entry in locks:
            name, _, line = entry.rpartition("@")
            lock = self._lock_id(name, owner, module)
            if lock is not None:
                holds.append(LockHold(lock, name, int(line)))
        helper = self.helper_lock.get(fq)
        if helper is not None and all(
            hold.lock != helper for hold in holds
        ):
            function = self.index.functions.get(fq)
            line = function.line if function is not None else 0
            holds.insert(0, LockHold(helper, "(caller-held)", line))
        return holds

    def _escaping_methods(self) -> Set[str]:
        """Methods referenced as values (callbacks, finalizers).

        A method handed to ``weakref.finalize`` or stored as a callback
        can run on any thread without the class lock, so it never
        qualifies as a guarded helper.
        """
        escaping: Set[str] = set()
        for refs in self.graph.references.values():
            escaping.update(refs)
        return escaping

    def _class_functions(
        self, owner: str
    ) -> List[Tuple[str, FunctionSummary]]:
        return sorted(
            (fq, fn) for fq, fn in self.index.functions.items()
            if self.owner_class.get(fq) == owner
        )

    def _infer_helpers(self) -> Dict[str, str]:
        helper: Dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            for owner, locks in sorted(self.lock_fields.items()):
                members = self._class_functions(owner)
                for fq, fn in members:
                    if fq in helper or not fn.is_method:
                        continue
                    if fn.is_public or fn.name == "__init__":
                        continue
                    if fq in self._escaping:
                        continue
                    for attr in sorted(locks):
                        lock = f"{owner}.{attr}"
                        if self._always_called_under(
                            fn, members, lock, helper
                        ):
                            helper[fq] = lock
                            changed = True
                            break
        return helper

    def _always_called_under(
        self,
        fn: FunctionSummary,
        members: List[Tuple[str, FunctionSummary]],
        lock: str,
        helper: Dict[str, str],
    ) -> bool:
        names = (f"self.{fn.name}", f"cls.{fn.name}")
        sites = [
            (caller_fq, site)
            for caller_fq, caller in members
            for site in caller.calls
            if site.raw in names
        ]
        if not sites:
            return False
        for caller_fq, site in sites:
            owner = self.owner_class.get(caller_fq)
            module = self._module_of(caller_fq)
            held = {
                self._lock_id(
                    entry.rpartition("@")[0], owner, module
                )
                for entry in site.locks
            }
            if helper.get(caller_fq) is not None:
                held.add(helper[caller_fq])
            if lock not in held:
                return False
        return True

    # -- call resolution --------------------------------------------

    def site_callee(self, fq: str, site: CallSite) -> Optional[str]:
        """Resolved callee, following constructor-typed attributes.

        ``self.bucket.try_acquire()`` resolves to
        ``TokenBucket.try_acquire`` when ``__init__`` assigned
        ``self.bucket = TokenBucket(...)``.
        """
        callee = self.graph.resolve_callee(site)
        if callee is not None:
            return callee
        owner = self.owner_class.get(fq)
        if owner is None or not site.raw.startswith(("self.", "cls.")):
            return None
        parts = site.raw.split(".")
        if len(parts) != 3:
            return None
        target_class = self.attr_types.get((owner, parts[1]))
        if target_class is None:
            return None
        resolved = f"{target_class}.{parts[2]}"
        if resolved in self.index.functions:
            return resolved
        return None

    # -- acquisition effects (LCK002 substrate) ---------------------

    @property
    def acquires(self) -> Dict[str, Set[str]]:
        """function fq → locks it may acquire (transitively)."""
        if self._acquires is not None:
            return self._acquires
        direct: Dict[str, Set[str]] = {}
        for fq, fn in self.index.functions.items():
            owner = self.owner_class.get(fq)
            module = self._module_of(fq)
            taken: Set[str] = set()
            for access in fn.accesses:
                lock = self._lock_id(access.name, owner, module)
                if lock is not None:
                    taken.add(lock)
            for site in fn.calls:
                for entry in site.locks:
                    lock = self._lock_id(
                        entry.rpartition("@")[0], owner, module
                    )
                    if lock is not None:
                        taken.add(lock)
            direct[fq] = taken
        result = {fq: set(locks) for fq, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for fq, fn in self.index.functions.items():
                mine = result[fq]
                before = len(mine)
                for site in fn.calls:
                    callee = self.site_callee(fq, site)
                    if callee is not None and callee in result:
                        mine.update(result[callee])
                if len(mine) != before:
                    changed = True
        self._acquires = result
        return result

    # -- blocking classification (LCK003 substrate) -----------------

    @staticmethod
    def _direct_blocking(site: CallSite) -> Optional[str]:
        name = site.callee or site.raw
        receiver, _, tail = site.raw.rpartition(".")
        resolved_tail = _tail(name)
        if resolved_tail in _SLEEP_TAILS:
            return "sleeps"
        if tail in SUBMIT_ATTRS and receiver:
            return "submits to a worker pool"
        if resolved_tail in _SUBPROCESS_TAILS and (
            site.callee or ""
        ).startswith("subprocess"):
            return "spawns a subprocess"
        if name == "open" or resolved_tail in _FILE_IO_TAILS - {"open"}:
            return "performs file I/O"
        if resolved_tail in _PUBLISH_TAILS:
            return "publishes shared memory / builds a worker pool"
        return None

    @property
    def blocking(self) -> Dict[str, Tuple[int, str]]:
        """function fq → (witness line, blocking-chain description)."""
        if self._blocking is not None:
            return self._blocking
        result: Dict[str, Tuple[int, str]] = {}
        for fq, fn in self.index.functions.items():
            for site in sorted(fn.calls, key=lambda s: s.line):
                reason = self._direct_blocking(site)
                if reason is not None:
                    result[fq] = (
                        site.line, f"{site.raw}() {reason}"
                    )
                    break
        changed = True
        while changed:
            changed = False
            for fq, fn in self.index.functions.items():
                if fq in result:
                    continue
                for site in sorted(fn.calls, key=lambda s: s.line):
                    callee = self.site_callee(fq, site)
                    if callee is None or callee not in result:
                        continue
                    _, chain = result[callee]
                    result[fq] = (site.line, f"{site.raw}() -> {chain}")
                    changed = True
                    break
        self._blocking = result
        return result

    # -- LCK001: guarded-by inference -------------------------------

    def guarded_fields(self) -> Dict[str, Dict[str, str]]:
        """class fq → {attribute → guarding lock id} (inferred)."""
        guarded: Dict[str, Dict[str, str]] = {}
        for owner, locks in self.lock_fields.items():
            fields: Dict[str, str] = {}
            for fq, fn in self._class_functions(owner):
                for access in fn.accesses:
                    if not access.write:
                        continue
                    attr = access.name.split(".", 1)[1]
                    if attr in locks:
                        continue
                    for hold in self.held_at(fq, access.locks):
                        if hold.lock.startswith(f"{owner}."):
                            fields.setdefault(attr, hold.lock)
                            break
            if fields:
                guarded[owner] = fields
        return guarded

    def lck001(self) -> List[Violation]:
        violations: List[Violation] = []
        guarded = self.guarded_fields()
        for owner, fields in sorted(guarded.items()):
            witness = self._guarded_write_witness(owner, fields)
            for fq, fn in self._class_functions(owner):
                if fn.name in ("__init__", "__new__"):
                    continue
                path = self.index.paths.get(fq, "")
                for access in fn.accesses:
                    attr = access.name.split(".", 1)[1]
                    lock = fields.get(attr)
                    if lock is None:
                        continue
                    held = {
                        hold.lock
                        for hold in self.held_at(fq, access.locks)
                    }
                    if lock in held:
                        continue
                    kind = "write" if access.write else "read"
                    acq_line, write_line = witness[attr]
                    attr_name = f"self.{lock.rsplit('.', 1)[-1]}"
                    violations.append(Violation(
                        path, access.line,
                        f"{access.name} is guarded by {attr_name} "
                        f"(inferred from the write under it at "
                        f"L{write_line}) but {fn.name}() {kind}s it "
                        f"without the lock — a concurrent guarded "
                        f"writer can interleave mid-update; "
                        f"lock-trace: L{acq_line} acquire {attr_name} "
                        f"[held] -> L{write_line} write {access.name} "
                        f"[guarded] -> L{access.line} {kind} "
                        f"{access.name} [unlocked]",
                    ))
        return _dedup(violations)

    def _guarded_write_witness(
        self, owner: str, fields: Dict[str, str]
    ) -> Dict[str, Tuple[int, int]]:
        """attribute → (acquire line, write line) of one guarded write."""
        witness: Dict[str, Tuple[int, int]] = {}
        for fq, fn in self._class_functions(owner):
            for access in fn.accesses:
                if not access.write:
                    continue
                attr = access.name.split(".", 1)[1]
                if attr not in fields or attr in witness:
                    continue
                for hold in self.held_at(fq, access.locks):
                    if hold.lock == fields[attr]:
                        witness[attr] = (hold.line, access.line)
                        break
        return witness

    # -- LCK002: lock-order cycles ----------------------------------

    def lck002(self) -> List[Violation]:
        edges: Dict[
            Tuple[str, str], Tuple[str, int, str]
        ] = {}

        def note(
            first: str, second: str, path: str, line: int, desc: str
        ) -> None:
            edges.setdefault((first, second), (path, line, desc))

        acquires = self.acquires
        for fq, fn in sorted(self.index.functions.items()):
            path = self.index.paths.get(fq, "")
            owner = self.owner_class.get(fq)
            module = self._module_of(fq)
            for access in fn.accesses:
                inner = self._lock_id(access.name, owner, module)
                if inner is None:
                    continue
                for hold in self.held_at(fq, access.locks):
                    if hold.lock != inner:
                        note(
                            hold.lock, inner, path, access.line,
                            f"{fn.name}() acquires {access.name}",
                        )
            for site in fn.calls:
                holds = self.held_at(fq, site.locks)
                if not holds:
                    continue
                callee = self.site_callee(fq, site)
                if callee is None:
                    continue
                for inner in sorted(acquires.get(callee, ())):
                    for hold in holds:
                        if hold.lock != inner:
                            note(
                                hold.lock, inner, path, site.line,
                                f"{fn.name}() calls {site.raw}()",
                            )
        return self._cycles(edges)

    def _cycles(
        self,
        edges: Dict[Tuple[str, str], Tuple[str, int, str]],
    ) -> List[Violation]:
        graph: Dict[str, Set[str]] = {}
        for first, second in edges:
            graph.setdefault(first, set()).add(second)
            graph.setdefault(second, set())
        violations: List[Violation] = []
        for component in _strongly_connected(graph):
            if len(component) == 1:
                lock = next(iter(component))
                if lock not in graph.get(lock, ()):
                    continue
            cycle = self._cycle_path(component, graph)
            if cycle is None:
                continue
            steps = []
            for first, second in zip(cycle, cycle[1:]):
                path, line, desc = edges[(first, second)]
                steps.append(
                    f"{path}:L{line} {desc} while holding "
                    f"{_short(first)}"
                )
            order = " -> ".join(_short(lock) for lock in cycle)
            path, line, _ = edges[(cycle[0], cycle[1])]
            violations.append(Violation(
                path, line,
                f"lock-order cycle {order}: threads taking these "
                f"locks in different orders can deadlock; "
                f"witness: {' -> '.join(steps)}",
            ))
        return _dedup(violations)

    @staticmethod
    def _cycle_path(
        component: Set[str], graph: Dict[str, Set[str]]
    ) -> Optional[List[str]]:
        start = min(component)
        path = [start]
        seen = {start}
        current = start
        while True:
            nexts = sorted(
                node for node in graph.get(current, ())
                if node in component
            )
            if not nexts:
                return None
            for node in nexts:
                if node == start and len(path) > 1:
                    return path + [start]
                if node not in seen:
                    current = node
                    seen.add(node)
                    path.append(node)
                    break
            else:
                if start in nexts:
                    return path + [start]
                return None

    # -- LCK003: blocking while holding -----------------------------

    def lck003(self) -> List[Violation]:
        violations: List[Violation] = []
        blocking = self.blocking
        for fq, fn in sorted(self.index.functions.items()):
            path = self.index.paths.get(fq, "")
            for site in fn.calls:
                holds = self.held_at(fq, site.locks)
                if not holds:
                    continue
                reason = self._direct_blocking(site)
                if reason is not None:
                    chain = f"{site.raw}() {reason}"
                else:
                    callee = self.site_callee(fq, site)
                    if callee is None or callee not in blocking:
                        continue
                    _, tail_chain = blocking[callee]
                    chain = f"{site.raw}() -> {tail_chain}"
                hold = holds[-1]
                violations.append(Violation(
                    path, site.line,
                    f"{fn.name}() blocks while holding "
                    f"{_short(hold.lock)}: {chain} — every thread "
                    f"contending for the lock stalls behind it; "
                    f"lock-trace: L{hold.line} acquire {hold.attr} "
                    f"[held] -> L{site.line} {site.raw}() [blocking]",
                ))
        return _dedup(violations)

    # -- ATM001: check-then-act atomicity ---------------------------

    def atm001(self) -> List[Violation]:
        violations: List[Violation] = []
        for fq, fn in sorted(self.index.functions.items()):
            owner = self.owner_class.get(fq)
            if owner is None:
                continue
            module = self._module_of(fq)
            path = self.index.paths.get(fq, "")
            regions: Dict[Tuple[str, str], List[AccessSite]] = {}
            for access in fn.accesses:
                for entry in access.locks:
                    name, _, _line = entry.rpartition("@")
                    lock = self._lock_id(name, owner, module)
                    if lock is not None:
                        regions.setdefault(
                            (lock, entry), []
                        ).append(access)
            by_lock: Dict[str, List[Tuple[str, List[AccessSite]]]] = {}
            for (lock, entry), accesses in regions.items():
                by_lock.setdefault(lock, []).append((entry, accesses))
            for lock, entries in sorted(by_lock.items()):
                entries.sort(
                    key=lambda item: int(item[0].rpartition("@")[2])
                )
                violations.extend(self._check_regions(
                    fn, path, lock, entries
                ))
        return _dedup(violations)

    def _check_regions(
        self,
        fn: FunctionSummary,
        path: str,
        lock: str,
        entries: List[Tuple[str, List[AccessSite]]],
    ) -> Iterator[Violation]:
        for i, (first_entry, first_accesses) in enumerate(entries):
            first_name, _, first_line = first_entry.rpartition("@")
            reads = [
                access for access in first_accesses
                if not access.write
                and access.name != first_name
            ]
            for later_entry, later_accesses in entries[i + 1:]:
                later_name, _, later_line = later_entry.rpartition("@")
                for read in reads:
                    attr = read.name
                    writes = [
                        access for access in later_accesses
                        if access.write and access.name == attr
                        and not _exclusive(access.branch, read.branch)
                    ]
                    if not writes:
                        continue
                    write = min(writes, key=lambda a: a.line)
                    rechecked = any(
                        access.name == attr and not access.write
                        and access.line <= write.line
                        for access in later_accesses
                    )
                    if rechecked:
                        continue
                    yield Violation(
                        path, write.line,
                        f"check-then-act across critical sections: "
                        f"{fn.name}() reads {attr} under "
                        f"{_short(lock)} (acquired L{first_line}), "
                        f"releases it, then writes {attr} in a later "
                        f"critical section without re-checking — the "
                        f"checked value can be stale by the time the "
                        f"write lands; lock-trace: L{first_line} "
                        f"acquire {first_name} [held] -> "
                        f"L{read.line} read {attr} [checked] -> "
                        f"(released) -> L{later_line} acquire "
                        f"{later_name} [re-held] -> L{write.line} "
                        f"write {attr} [no re-check]",
                    )


def _dedup(violations: List[Violation]) -> List[Violation]:
    seen: Set[Violation] = set()
    ordered: List[Violation] = []
    for violation in sorted(
        violations, key=lambda v: (v.path, v.line, v.message)
    ):
        if violation in seen:
            continue
        seen.add(violation)
        ordered.append(violation)
    return ordered


def _strongly_connected(
    graph: Dict[str, Set[str]]
) -> List[Set[str]]:
    """Tarjan's SCCs, deterministic over sorted node order."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[Set[str]] = []
    counter = [0]

    def strong(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(graph.get(node, ())):
            if succ not in index:
                strong(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            component: Set[str] = set()
            while True:
                top = stack.pop()
                on_stack.discard(top)
                component.add(top)
                if top == node:
                    break
            components.append(component)

    for node in sorted(graph):
        if node not in index:
            strong(node)
    return components


def _emit(
    rule: ProgramRule, violations: List[Violation]
) -> Iterator[Finding]:
    for violation in violations:
        yield rule.finding(
            violation.path, violation.line, violation.message
        )


@register
class GuardedByRule(ProgramRule):
    """LCK001: inferred lock-guarded fields stay guarded everywhere.

    The service state machines (token bucket, breaker, cache) mutate
    their counters only under ``self._lock``; one unguarded read of
    ``self._tokens`` or ``self._state`` observes a torn update under
    contention.  Guarded-helper inference keeps the deliberately
    lock-free private helpers (``_trip``, ``_maybe_half_open``) quiet:
    a private method whose every intra-class call site holds the lock
    runs lock-held by construction.
    """

    id = "LCK001"
    severity = "error"
    description = (
        "fields written under a class lock are read/written only "
        "with that lock held (guarded-by inference with "
        "guarded-helper support)"
    )

    def check_program(self, program: object) -> Iterator[Finding]:
        assert isinstance(program, Program)
        yield from _emit(self, program.concurrency().lck001())


@register
class LockOrderRule(ProgramRule):
    """LCK002: the may-hold-while-acquiring graph stays acyclic.

    Acquisition effects propagate interprocedurally (the admission
    controller holding its lock while calling the token bucket is an
    edge); any cycle means two threads can each hold what the other
    needs.  Findings carry a witness trace naming each edge's site.
    """

    id = "LCK002"
    severity = "error"
    description = (
        "no cycles in the may-hold-while-acquiring lock graph "
        "(interprocedural deadlock detection with witness traces)"
    )

    def check_program(self, program: object) -> Iterator[Finding]:
        assert isinstance(program, Program)
        yield from _emit(self, program.concurrency().lck002())


@register
class BlockingWhileHoldingRule(ProgramRule):
    """LCK003: no sleeps, I/O, or publication under a held lock.

    A lock held across ``time.sleep`` (or an injected ``self._sleep``),
    a worker-pool submit, a subprocess, file I/O, or a shared-memory
    publish turns one slow operation into a service-wide stall: every
    thread contending for the lock queues behind it.
    """

    id = "LCK003"
    severity = "warning"
    description = (
        "no blocking operations (sleeps, pool submits, subprocess, "
        "file I/O, shm/pool publication) while a lock is held"
    )

    def check_program(self, program: object) -> Iterator[Finding]:
        assert isinstance(program, Program)
        yield from _emit(self, program.concurrency().lck003())


@register
class CheckThenActRule(ProgramRule):
    """ATM001: guarded checks and their dependent writes stay atomic.

    Reading a guarded value in one critical section and writing it in
    a later one re-opens the race the lock was meant to close: the
    checked value can change between the sections.  A re-read of the
    field inside the second section (the documented re-check pattern,
    e.g. the registry's ``only_if_unloaded`` guard) satisfies the rule.
    """

    id = "ATM001"
    severity = "warning"
    description = (
        "a guarded read whose dependent write re-acquires the same "
        "lock later must re-check the value in the second critical "
        "section"
    )

    def check_program(self, program: object) -> Iterator[Finding]:
        assert isinstance(program, Program)
        yield from _emit(self, program.concurrency().atm001())
