"""The cross-module program rules.

These rules consume the :class:`~repro.analysis.program.Program` model
(symbol table + call graph + data-flow fixpoints) and check properties
no single-file rule can see:

* SEED001 — seed provenance: hardcoded seeds at RNG constructions,
  seed parameters that are accepted but never reach a generator, and
  one seed value consumed by several generator constructions across
  module boundaries (correlated streams).
* PKL001 — transitive pickle-safety at worker-pool seams: lambdas and
  closures laundered through ``functools.partial`` or helper-function
  parameters, and seam-crossing functions that (transitively) read
  module-level locks or open file handles that do not survive spawn.
* EXC001X — interprocedural exception flow: public ``core``/``runtime``
  entry points must only propagate ``repro.errors`` types (plus the
  small allowed builtin set), no matter how deep the raise site is.
* DEAD001 — unreachable definitions: functions and classes nothing in
  the project, tests, tools, benchmarks, or docs ever names.

Suppression works like every other rule: ``# repro: noqa[RULE]`` on
the reported line.  EXC001X reports at the *raise* site (not the entry
point) precisely so one ``noqa`` can acknowledge one raise.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..registry import ProgramRule, register
from ..rules import _BOUNDARY_BUILTIN_ALLOWED
from . import Program
from .dataflow import (
    _BUILTIN_ANCESTORS,
    _map_argument,
    _tail,
    is_rng_constructor,
    seed_argument,
    submit_slot,
)
from .symbols import FunctionSummary

#: Algorithm-layer directories where seed discipline is enforced.
_LIBRARY_DIRS = frozenset({
    "core", "butterfly", "sampling", "graph", "worlds",
    "counting", "support", "runtime", "hardness",
})

#: Script-layer directories excluded from dead-code reporting (their
#: entry points are invoked from the command line, not from code).
_SCRIPT_DIRS = frozenset({"experiments", "apps", "datasets"})

#: Constructors whose results are per-process and must not be shared
#: across a spawn seam through module-level state.
_UNPICKLABLE_CTOR_TAILS = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier",
})

#: Constructors whose results are raw buffers over process memory.
#: Module-level buffer state read by a seam-crossing function does not
#: pickle (and re-creating it per worker defeats the sharing); the
#: shared-memory seam contract is handle-only — ship the segment name
#: and shapes/dtypes, attach inside the worker.
_BUFFER_CTOR_TAILS = frozenset({"SharedMemory", "memoryview", "mmap"})

#: Decorators that do not imply external registration (a decorated
#: definition with any *other* decorator is treated as live).
_NEUTRAL_DECORATOR_TAILS = frozenset({
    "staticmethod", "classmethod", "property", "wraps", "lru_cache",
    "cache", "cached_property", "dataclass", "abstractmethod",
    "overload", "contextmanager", "total_ordering", "final",
})


def _in_library(path: str) -> bool:
    """Whether a repo-relative path is in the algorithm layers."""
    return any(part in _LIBRARY_DIRS for part in Path(path).parts[:-1])


def _in_scripts(path: str) -> bool:
    """Whether a repo-relative path is in the script layers."""
    return any(part in _SCRIPT_DIRS for part in Path(path).parts[:-1])


def _exclusive(first: List[str], second: List[str]) -> bool:
    """Whether two branch contexts are mutually exclusive.

    Contexts are lists of ``"line:col:arm"`` markers, outermost first.
    Two sites conflict only if they share an ``if`` statement and sit
    in different arms of it; sites under *different* if statements at
    the same depth are sequential and can both execute.
    """
    for mine, theirs in zip(first, second):
        if mine == theirs:
            continue
        my_if, _, my_arm = mine.rpartition(":")
        their_if, _, their_arm = theirs.rpartition(":")
        return my_if == their_if and my_arm != their_arm
    return False


def _unwrap_partial(tag: str) -> Tuple[str, bool]:
    """Strip ``partial:`` prefixes; returns (inner tag, was wrapped)."""
    wrapped = False
    while tag.startswith("partial:"):
        tag = tag[len("partial:"):]
        wrapped = True
    return tag, wrapped


@register
class SeedProvenanceRule(ProgramRule):
    """SEED001: seeds are threaded, not hardcoded or consumed twice.

    The paper's experiments are only reproducible if every generator
    traces back to the trial seed exactly once.  A literal seed buried
    in an algorithm module silently decouples runs from the trial
    configuration; one seed value consumed by two generator
    constructions (possibly in different modules) yields *correlated*
    streams, which biases the sampling estimators without failing any
    test.
    """

    id = "SEED001"
    severity = "error"
    description = (
        "seed provenance: no hardcoded seeds in algorithm layers, no "
        "orphan seed parameters, no seed consumed by two RNG "
        "constructions (use spawn_rngs to split streams)"
    )

    #: Parameter names that carry seeding responsibility.
    seed_params = ("seed", "rng")

    def check_program(self, program: object) -> Iterator[Finding]:
        assert isinstance(program, Program)
        for fq, function in program.index.functions.items():
            path = program.path_of(fq)
            if not _in_library(path) or path.endswith("sampling/rng.py"):
                continue
            yield from self._hardcoded(program, path, function)
            yield from self._double_seeded(program, fq, path, function)
            yield from self._orphaned(program, fq, path, function)

    def _hardcoded(
        self, program: Program, path: str, function: FunctionSummary
    ) -> Iterator[Finding]:
        for site in function.calls:
            if not is_rng_constructor(site.callee, program.index):
                continue
            tag = seed_argument(site)
            if tag is not None and tag.startswith("int:"):
                yield self.finding(
                    path, site.line,
                    f"hardcoded seed {tag[len('int:'):]} at "
                    f"{site.raw}(); thread the seed through a "
                    f"parameter so runs are reproducible by "
                    f"configuration, not by source edits",
                )

    def _double_seeded(
        self,
        program: Program,
        fq: str,
        path: str,
        function: FunctionSummary,
    ) -> Iterator[Finding]:
        # Every site where a parameter's value is consumed by an RNG
        # construction: locally, or forwarded into a callee parameter
        # the data-flow fixpoint marked as RNG-constructing.
        events: Dict[str, List[Tuple[int, str, List[str]]]] = {}
        consumed: Set[int] = set()
        for site in function.calls:
            if not is_rng_constructor(site.callee, program.index):
                continue
            tag = seed_argument(site)
            if tag is not None and tag.startswith("param:"):
                param = tag[len("param:"):]
                events.setdefault(param, []).append(
                    (site.line, f"{site.raw}()", site.branch)
                )
                consumed.add(id(site))
        for callee_fq, site in program.graph.callees(fq):
            if id(site) in consumed:
                continue
            rng_params = program.rng_params.get(callee_fq)
            if not rng_params:
                continue
            callee = program.index.functions[callee_fq]
            for target_param, tag in _map_argument(
                site, callee, skip_self=callee.is_method
            ):
                if target_param in rng_params and tag.startswith(
                    "param:"
                ):
                    param = tag[len("param:"):]
                    events.setdefault(param, []).append(
                        (site.line, f"{_tail(callee_fq)}()", site.branch)
                    )
        for param, uses in sorted(events.items()):
            uses.sort()
            for index in range(1, len(uses)):
                line, desc, branch = uses[index]
                first_line, first_desc, first_branch = uses[0]
                if _exclusive(first_branch, branch):
                    continue
                yield self.finding(
                    path, line,
                    f"seed parameter {param!r} already seeded a "
                    f"generator via {first_desc} (line {first_line}) "
                    f"and is consumed again by {desc}; identical "
                    f"seeds produce correlated streams — split with "
                    f"spawn_rngs() or pass the constructed generator",
                )
                break

    def _orphaned(
        self,
        program: Program,
        fq: str,
        path: str,
        function: FunctionSummary,
    ) -> Iterator[Finding]:
        if (
            function.is_method
            or function.is_nested
            or function.name == "<module>"
        ):
            return
        reaching = program.rng_params.get(fq, set())
        for param in function.params:
            if param not in self.seed_params or param in reaching:
                continue
            if self._is_used(function, param):
                continue
            yield self.finding(
                path, function.line,
                f"parameter {param!r} of {function.name}() never "
                f"reaches an RNG construction or any callee; an "
                f"ignored seed parameter makes callers believe the "
                f"function is seeded when it is not",
            )

    @staticmethod
    def _is_used(function: FunctionSummary, param: str) -> bool:
        tag = f"param:{param}"
        prefix = f"{param}."
        for site in function.calls:
            if site.raw == param or site.raw.startswith(prefix):
                return True
            if tag in site.args or tag in site.kwargs.values():
                return True
        return False


@register
class TransitivePickleRule(ProgramRule):
    """PKL001: pickle-safety holds transitively at process seams.

    MPS001 catches a lambda handed *directly* to ``pool.submit``; this
    rule follows the call graph to catch what the file-local view
    cannot — ``functools.partial`` wrappers, callables laundered
    through a helper whose parameter reaches a seam, and seam-crossing
    functions that transitively read module-level synchronisation
    primitives (each spawn worker re-imports the module and gets its
    own lock, so the "shared" state silently is not).
    """

    id = "PKL001"
    severity = "error"
    description = (
        "worker seams stay pickle-safe transitively: no partial-"
        "wrapped or helper-laundered lambdas/closures, no module-"
        "level locks read across the spawn boundary"
    )

    def check_program(self, program: object) -> Iterator[Finding]:
        assert isinstance(program, Program)
        for fq, function in program.index.functions.items():
            path = program.path_of(fq)
            for site in function.calls:
                slot = submit_slot(site)
                if slot is not None:
                    yield from self._at_seam(
                        program, path, site.line, site.raw, slot
                    )
            yield from self._laundered(program, fq, path)

    def _at_seam(
        self,
        program: Program,
        path: str,
        line: int,
        raw: str,
        slot: str,
    ) -> Iterator[Finding]:
        inner, wrapped = _unwrap_partial(slot)
        if wrapped and inner.startswith("lambda:"):
            yield self.finding(
                path, line,
                f"functools.partial over a lambda crosses the process "
                f"seam {raw}(); the partial pickles, its lambda does "
                f"not — use a module-level function",
            )
            return
        if wrapped and inner.startswith("nested:"):
            yield self.finding(
                path, line,
                f"functools.partial over nested function "
                f"{_tail(inner[len('nested:'):])}() crosses the "
                f"process seam {raw}(); closures cannot be pickled "
                f"under spawn — hoist the function to module level",
            )
            return
        if inner.startswith("ref:"):
            yield from self._module_state(
                program, path, line, raw, inner[len("ref:"):]
            )

    def _module_state(
        self,
        program: Program,
        path: str,
        line: int,
        raw: str,
        target: str,
    ) -> Iterator[Finding]:
        resolved = program.index.resolve(target)
        if resolved is None or resolved not in program.index.functions:
            return
        for reached in sorted(
            program.graph.transitive_callees([resolved])
        ):
            function = program.index.functions.get(reached)
            if function is None:
                continue
            module = program.summaries.get(program.path_of(reached))
            if module is None:
                continue
            for name in function.global_reads:
                binding = module.bindings.get(name)
                if binding is None or not binding.startswith("call:"):
                    continue
                ctor = binding[len("call:"):]
                via = (
                    "" if reached == resolved
                    else f" (transitively via {_tail(reached)}())"
                )
                if _tail(ctor) in _BUFFER_CTOR_TAILS:
                    yield self.finding(
                        path, line,
                        f"{_tail(resolved)}() crosses the process seam "
                        f"{raw}() but{via} reads module state {name!r} "
                        f"holding a {ctor}() buffer; buffers do not "
                        f"pickle — pass the picklable handle (segment "
                        f"name + shapes/dtypes) and attach inside the "
                        f"worker",
                    )
                    return
                if (
                    _tail(ctor) not in _UNPICKLABLE_CTOR_TAILS
                    and ctor != "open"
                ):
                    continue
                yield self.finding(
                    path, line,
                    f"{_tail(resolved)}() crosses the process seam "
                    f"{raw}() but{via} reads module state {name!r} "
                    f"built by {ctor}(); each spawn worker re-creates "
                    f"it, so it is not shared across the seam",
                )
                return

    def _laundered(
        self, program: Program, fq: str, path: str
    ) -> Iterator[Finding]:
        for callee_fq, site in program.graph.callees(fq):
            seam_params = program.seam_params.get(callee_fq)
            if not seam_params:
                continue
            callee = program.index.functions[callee_fq]
            for param, tag in _map_argument(
                site, callee, skip_self=callee.is_method
            ):
                if param not in seam_params:
                    continue
                inner, _wrapped = _unwrap_partial(tag)
                if inner.startswith("lambda:"):
                    what = "lambda"
                elif inner.startswith("nested:"):
                    what = (
                        f"nested function "
                        f"{_tail(inner[len('nested:'):])}()"
                    )
                else:
                    continue
                yield self.finding(
                    path, site.line,
                    f"{what} passed as {param!r} to "
                    f"{_tail(callee_fq)}() reaches a process seam "
                    f"inside it; spawn workers cannot unpickle it — "
                    f"pass a module-level function",
                )


@register
class ExceptionFlowRule(ProgramRule):
    """EXC001X: deep raises still honour the error-type contract.

    EXC001 checks the raises *written in* a boundary module; this rule
    closes the gap it cannot see — a bare ``ValueError`` raised three
    calls deep in a support module that propagates uncaught out of a
    public ``core``/``runtime`` entry point.  Callers are entitled to
    catch ``ReproError`` and know they have handled library failure.
    """

    id = "EXC001X"
    severity = "error"
    description = (
        "public core/runtime entry points only propagate repro.errors "
        "types (interprocedural: checked through the call graph)"
    )

    #: Directories whose public functions are checked entry points.
    entry_dirs = ("core", "runtime")

    def check_program(self, program: object) -> Iterator[Finding]:
        assert isinstance(program, Program)
        reported: Set[Tuple[str, int, str]] = set()
        for fq, function in sorted(program.index.functions.items()):
            if (
                not function.is_public
                or function.is_nested
                or function.name == "<module>"
            ):
                continue
            path = program.path_of(fq)
            if not any(
                part in self.entry_dirs
                for part in Path(path).parts[:-1]
            ):
                continue
            escapes = program.exceptions.escapes.get(fq, {})
            for exc, origin in sorted(escapes.items()):
                if len(origin.chain) <= 1:
                    continue  # direct raises are EXC001's domain
                if self._allowed(program, exc):
                    continue
                key = (origin.path, origin.line, _tail(exc))
                if key in reported:
                    continue
                reported.add(key)
                chain = " -> ".join(
                    f"{_tail(link)}()" for link in origin.chain
                )
                yield self.finding(
                    origin.path, origin.line,
                    f"{_tail(exc)} raised here escapes the public "
                    f"entry point {fq}() ({chain}); wrap it in a "
                    f"repro.errors type so callers can catch "
                    f"ReproError at the boundary",
                )

    @staticmethod
    def _allowed(program: Program, exc: str) -> bool:
        ancestors = program.exceptions.ancestors(exc)
        if any(_tail(link) == "ReproError" for link in ancestors):
            return True
        tail = _tail(exc)
        if tail in _BUILTIN_ANCESTORS:
            return tail in _BOUNDARY_BUILTIN_ALLOWED
        resolved = program.index.resolve(exc)
        if resolved is not None and resolved in program.index.classes:
            return False
        # Unknown origin (external library type): benefit of the doubt.
        return True


@register
class DeadCodeRule(ProgramRule):
    """DEAD001: every definition is reachable from something real.

    Liveness is reachability over call *and* reference edges from the
    roots: module import-time code, decorated definitions (decorators
    imply registration), ``main`` entry points, and any definition the
    tests, tools, benchmarks, or docs mention by name.  Re-exports are
    deliberately *not* roots — an ``__init__`` forwarding a function
    nobody calls does not make it live.
    """

    id = "DEAD001"
    severity = "warning"
    description = (
        "no unreachable definitions: every function/class is called, "
        "referenced, decorated, or named in tests/docs"
    )

    def check_program(self, program: object) -> Iterator[Finding]:
        assert isinstance(program, Program)
        words = self._external_words(program)
        live = program.graph.reachable(self._roots(program, words))
        for fq, function in sorted(program.index.functions.items()):
            if (
                function.is_method
                or function.is_nested
                or function.name == "<module>"
                or fq in live
                or function.name in words
            ):
                continue
            path = program.path_of(fq)
            if not self._reportable(path):
                continue
            yield self.finding(
                path, function.line,
                f"function {function.name}() is never called or "
                f"referenced in the project, tests, benchmarks, "
                f"tools, or docs; remove it or exercise it",
            )
        for fq, cls in sorted(program.index.classes.items()):
            if fq in live or cls.name in words:
                continue
            if any(
                _tail(deco) not in _NEUTRAL_DECORATOR_TAILS
                for deco in cls.decorators
            ):
                continue
            if any(_tail(base) == "Protocol" for base in cls.bases):
                # Structural types are satisfied, never instantiated;
                # their use sites are annotations the IR cannot see.
                continue
            path = program.path_of(fq)
            if not self._reportable(path) or "." in _class_qual(
                fq, program
            ):
                continue
            yield self.finding(
                path, cls.line,
                f"class {cls.name} is never instantiated or "
                f"referenced in the project, tests, benchmarks, "
                f"tools, or docs; remove it or exercise it",
            )

    @staticmethod
    def _reportable(path: str) -> bool:
        parts = Path(path).parts
        return bool(parts) and parts[0] == "src" and not _in_scripts(
            path
        )

    @staticmethod
    def _external_words(program: Program) -> Set[str]:
        return set(
            re.findall(
                r"[A-Za-z_][A-Za-z0-9_]*", program.external_text()
            )
        )

    def _roots(
        self, program: Program, words: Set[str]
    ) -> List[str]:
        # A definition the outside world names (tests, docs, tools)
        # is a root, not merely unreportable: its private callees are
        # live through it.
        roots: List[str] = []
        for fq, function in program.index.functions.items():
            if function.name == "<module>" or function.name == "main":
                roots.append(fq)
            elif function.name in words:
                roots.append(fq)
            elif function.name.startswith("__") and (
                function.name.endswith("__")
            ):
                roots.append(fq)
            elif any(
                _tail(deco) not in _NEUTRAL_DECORATOR_TAILS
                for deco in function.decorators
            ):
                roots.append(fq)
        for fq, cls in program.index.classes.items():
            if cls.name in words or any(
                _tail(deco) not in _NEUTRAL_DECORATOR_TAILS
                for deco in cls.decorators
            ):
                roots.append(fq)
        return roots


def _class_qual(fq: str, program: Program) -> str:
    """The class's module-level qualname (nested classes are dotted)."""
    module_summary = program.summaries.get(program.path_of(fq))
    if module_summary is None or not module_summary.module:
        return fq
    prefix = f"{module_summary.module}."
    return fq[len(prefix):] if fq.startswith(prefix) else fq
