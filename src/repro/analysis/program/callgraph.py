"""The project call graph over module summaries.

Nodes are fully qualified function names (``repro.core.ols.ols``,
``repro.runtime.workers._worker_main``, the synthetic
``<module>`` node per file for import-time code).  Edges come from
three places:

* direct calls whose callee resolves to a project function (including
  through ``__init__`` re-export chains and method calls on
  ``self``/``cls``);
* class instantiations, which edge to the class's ``__init__`` when the
  project defines one;
* ``functools.partial`` and bare function references passed as call
  arguments, recorded as *reference* edges — they mark the target as
  used (for DEAD001) without asserting a call happens (for exception
  flow).

Mutually recursive modules are handled naturally: extraction is purely
syntactic, so import cycles cannot occur, and the data-flow fixpoints
terminate on cyclic graphs by monotonicity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .symbols import CallSite, FunctionSummary, ProjectIndex


class CallGraph:
    """Call and reference edges between project functions."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: caller fq → list of (callee fq, call site)
        self.calls: Dict[str, List[Tuple[str, CallSite]]] = {}
        #: callee fq → set of caller fqs
        self.callers: Dict[str, Set[str]] = {}
        #: referrer fq → referenced fqs (non-call uses)
        self.references: Dict[str, Set[str]] = {}
        self._build()

    def _build(self) -> None:
        for fq, function in self.index.functions.items():
            edges: List[Tuple[str, CallSite]] = []
            refs: Set[str] = set()
            for site in function.calls:
                callee = self.resolve_callee(site)
                if callee is not None:
                    edges.append((callee, site))
                    self.callers.setdefault(callee, set()).add(fq)
                for tag in (*site.args, *site.kwargs.values()):
                    target = reference_target(tag)
                    if target is not None:
                        resolved = self.index.resolve(target)
                        refs.add(resolved or target)
            for ref in function.refs:
                refs.add(self.index.resolve(ref) or ref)
            for decorator in function.decorators:
                refs.add(self.index.resolve(decorator) or decorator)
            self.calls[fq] = edges
            self.references[fq] = refs

    def resolve_callee(self, site: CallSite) -> Optional[str]:
        """The project function a call site lands in, if resolvable.

        A class instantiation resolves to ``Class.__init__`` when the
        project defines one (else to the class itself, which callers
        can detect via :attr:`ProjectIndex.classes`).
        """
        resolved = self.index.resolve(site.callee)
        if resolved is None:
            return None
        if resolved in self.index.classes:
            init = f"{resolved}.__init__"
            if init in self.index.functions:
                return init
            return None
        if resolved in self.index.functions:
            return resolved
        return None

    def callees(self, fq: str) -> List[Tuple[str, CallSite]]:
        """Resolved (callee, site) pairs of ``fq``."""
        return self.calls.get(fq, [])

    def callers_of(self, fq: str) -> Set[str]:
        """Functions with a call edge into ``fq``."""
        return self.callers.get(fq, set())

    def transitive_callees(self, roots: Iterable[str]) -> Set[str]:
        """Every function reachable from ``roots`` via call edges."""
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for callee, _site in self.calls.get(current, []):
                if callee not in seen:
                    stack.append(callee)
        return seen

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Reachability over call *and* reference edges.

        This is the liveness relation DEAD001 uses: a referenced
        function may be called later through a variable, so references
        keep their targets (and everything those targets call) alive.
        """
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in self.index.classes:
                # A live class keeps its methods live (dynamic
                # dispatch is invisible to the graph).
                for method in self.index.classes[current].methods:
                    stack.append(f"{current}.{method}")
            for callee, _site in self.calls.get(current, []):
                stack.append(callee)
            for ref in self.references.get(current, ()):
                resolved = self.index.resolve(ref) or ref
                if (
                    resolved in self.index.functions
                    or resolved in self.index.classes
                ):
                    stack.append(resolved)
                elif resolved in self.index.modules:
                    # A module passed around as a value (e.g. handed to
                    # a helper that calls its attributes) keeps every
                    # top-level definition of that module live.
                    summary = self.index.modules[resolved]
                    prefix = f"{resolved}." if resolved else ""
                    for fn in summary.functions:
                        if "." not in fn.qualname:
                            stack.append(f"{prefix}{fn.qualname}")
                    for cls in summary.classes:
                        stack.append(f"{prefix}{cls.name}")
        return seen


def reference_target(tag: str) -> Optional[str]:
    """The dotted name a provenance tag refers to, if any.

    ``ref:x.y`` and ``nested:x.y`` point at ``x.y``; ``partial:`` tags
    unwrap recursively; value tags (literals, params) return ``None``.
    """
    while tag.startswith("partial:"):
        tag = tag[len("partial:"):]
    if tag.startswith(("ref:", "nested:", "call:")):
        target = tag.split(":", 1)[1]
        if target and target != "?" and "." in target:
            return target
    return None
