"""Resource-protocol program rules (typestate over the call graph).

These rules evaluate the declarative protocol specs in
:mod:`~repro.analysis.program.typestate` over the whole program:

* SHM001 — shared-memory segment lifecycle: every ``SharedMemory``
  mapping is closed on every path (including exception edges), no use
  after close, no double unlink, and segments stored on ``self`` are
  retired by a sibling method or a registered ``weakref.finalize``.
* RES001 — acquire/release pairing for circuit-breaker probe slots
  and admission inflight tokens: every path out of a function that
  takes a slot returns it (releases may live in a different module —
  the engine follows the call graph), plus the broker-specific
  teardown-before-republish check for cached worker pools.

Findings embed the typestate trace (state after each step) so a SARIF
consumer can replay how the resource reached the violating state.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Set, Tuple

from ..findings import Finding
from ..registry import ProgramRule, register
from . import Program
from .typestate import ProtocolSpec, protocols_for
from .dataflow import _tail


def _in_scope(path: str, spec: ProtocolSpec) -> bool:
    if not spec.scope_dirs:
        return True
    return any(
        part in spec.scope_dirs for part in Path(path).parts[:-1]
    )


def _protocol_findings(
    rule: ProgramRule, program: Program, rule_id: str
) -> Iterator[Finding]:
    seen: Set[Tuple[str, int, str]] = set()
    for spec in protocols_for(rule_id):
        analysis = program.typestate(spec)
        for fq, function in sorted(program.index.functions.items()):
            path = program.path_of(fq)
            if not path or not _in_scope(path, spec):
                continue
            for violation in analysis.violations(fq, function, path):
                key = (violation.path, violation.line, violation.message)
                if key in seen:
                    continue
                seen.add(key)
                yield rule.finding(
                    violation.path, violation.line, violation.message
                )


@register
class SharedMemoryLifecycleRule(ProgramRule):
    """SHM001: shared-memory segments follow the published lifecycle.

    The shm seam contract (``docs/runtime.md``) is publish → attach →
    close → unlink, with exactly one owner unlinking.  A mapping
    leaked on an exception edge survives as an open file descriptor
    and a ``/dev/shm`` segment until the resource tracker complains;
    a use after close is a segfault-in-waiting on CPython builds that
    release the buffer eagerly.
    """

    id = "SHM001"
    severity = "error"
    description = (
        "shared-memory lifecycle: close on every path (exception "
        "edges included), no use-after-close or double unlink, "
        "self-stored segments retired by a method or weakref.finalize"
    )

    def check_program(self, program: object) -> Iterator[Finding]:
        assert isinstance(program, Program)
        yield from _protocol_findings(self, program, self.id)


@register
class ResourcePairingRule(ProgramRule):
    """RES001: every taken slot is returned on every path.

    Circuit-breaker probe slots (``allow()`` → ``cancel_probe()`` /
    ``record_*``) and admission inflight tokens (``admit()`` →
    ``release()``) are counting resources: one dropped slot under a
    rare exception permanently shrinks capacity — the PR 6 review
    caught exactly one of these by hand.  The typestate engine follows
    releases through the call graph, so handing the breaker to a
    helper that records the outcome satisfies the pairing.
    """

    id = "RES001"
    severity = "error"
    description = (
        "breaker probe slots and admission tokens are released on "
        "every path out of the service layer (interprocedural), and "
        "cached worker pools are closed before republish"
    )

    #: Method tails that construct a worker pool in the service layer.
    pool_ctor_tails = frozenset({"WorkerPool"})

    def check_program(self, program: object) -> Iterator[Finding]:
        assert isinstance(program, Program)
        yield from _protocol_findings(self, program, self.id)
        yield from self._pool_republish(program)

    def _pool_republish(self, program: Program) -> Iterator[Finding]:
        """Evicting a cached pool without closing it leaks workers.

        Shape check: a service function that both pops an entry out of
        a pool cache and constructs a fresh pool must close the stale
        pool somewhere — otherwise the evicted pool's worker processes
        survive the republish.
        """
        for fq, function in sorted(program.index.functions.items()):
            path = program.path_of(fq)
            if not any(
                part in ("service",) for part in Path(path).parts[:-1]
            ):
                continue
            pops_cache = False
            ctor_line = None
            closes = False
            for site in function.calls:
                receiver, _, tail = site.raw.rpartition(".")
                if tail == "pop" and "pool" in receiver.lower():
                    pops_cache = True
                if tail == "close":
                    closes = True
                ctor_tail = _tail(site.callee or site.raw)
                if ctor_tail in self.pool_ctor_tails and (
                    ctor_line is None
                ):
                    ctor_line = site.line
            if pops_cache and ctor_line is not None and not closes:
                yield self.finding(
                    path, ctor_line,
                    f"{function.name}() republishes a worker pool "
                    f"after evicting a cached entry but never calls "
                    f"close() on the stale pool; its worker processes "
                    f"and shm attachments outlive the republish",
                )
