"""Diff-aware analysis: changed files and changed lines vs a git base.

``--diff BASE`` restricts the *reporting* surface to lines touched
since ``BASE`` while still building the whole-program model (from the
summary cache, so unchanged files cost a JSON load instead of a
parse).  That combination is what makes pre-commit-time runs fast and
still interprocedurally correct: a changed line in one module can
surface a SEED001/EXC001X finding only if the finding lands on a
changed line, exactly the contract reviewers expect from diff lint.
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path
from typing import Dict, List, Set

#: ``+++ b/<path>`` target-file header of a unified diff.
_TARGET = re.compile(r"^\+\+\+ b/(?P<path>.+)$")

#: ``@@ -a,b +c,d @@`` hunk header (``,b``/``,d`` optional).
_HUNK = re.compile(
    r"^@@ -\d+(?:,\d+)? \+(?P<start>\d+)(?:,(?P<count>\d+))? @@"
)

#: Non-Python paths that, when touched, re-trigger the repo-level docs
#: rules (DOC002/MET002) in a diff run.
PROJECT_TRIGGER_SUFFIXES = (".md", ".toml", ".yaml", ".yml")


class DiffError(ValueError):
    """``git diff`` against the requested base failed."""


def _git(root: Path, *args: str) -> str:
    process = subprocess.run(
        ["git", *args],
        cwd=root,
        capture_output=True,
        text=True,
    )
    if process.returncode != 0:
        detail = process.stderr.strip() or process.stdout.strip()
        raise DiffError(f"git {' '.join(args)} failed: {detail}")
    return process.stdout


def changed_lines(root: Path, base: str) -> Dict[str, Set[int]]:
    """Changed (added/edited) line numbers per repo-relative path.

    Compares the working tree against ``base`` with zero context, so
    every reported line is genuinely touched.  Untracked files count as
    fully changed.  Deleted files do not appear (nothing to analyze).
    """
    output = _git(
        root, "diff", "--unified=0", "--no-color", base, "--"
    )
    changed: Dict[str, Set[int]] = {}
    current: Set[int] = set()
    for raw_line in output.splitlines():
        target = _TARGET.match(raw_line)
        if target is not None:
            current = changed.setdefault(target.group("path"), set())
            continue
        hunk = _HUNK.match(raw_line)
        if hunk is not None:
            start = int(hunk.group("start"))
            count_text = hunk.group("count")
            count = 1 if count_text is None else int(count_text)
            current.update(range(start, start + count))
    untracked = _git(
        root, "ls-files", "--others", "--exclude-standard"
    )
    for path in untracked.splitlines():
        path = path.strip()
        if not path:
            continue
        target_file = root / path
        try:
            line_count = len(
                target_file.read_text(encoding="utf-8").splitlines()
            )
        except (OSError, UnicodeDecodeError):
            continue
        changed[path] = set(range(1, line_count + 1))
    return changed


def triggers_project_rules(changed: Dict[str, Set[int]]) -> bool:
    """Whether the change set warrants the repo-level docs rules.

    Docs-consistency rules (DOC002/MET002) read markdown and config
    files the per-file filter never sees; run them whenever any
    markdown/config file — or anything under ``docs/`` or ``tools/``
    — is part of the change.
    """
    for path in changed:
        if path.endswith(PROJECT_TRIGGER_SUFFIXES):
            return True
        parts = Path(path).parts
        if parts and parts[0] in ("docs", "tools"):
            return True
    return False
