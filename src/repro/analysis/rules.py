"""The built-in invariant rules.

Each rule guards a whole-program property the test suite cannot see
(see ``docs/static-analysis.md`` for the catalog and the rationale):

* RNG001 — all randomness routes through ``repro.sampling.rng``
* CLK001 — the deadline policy owns clocks in the algorithm layers
* MPS001 — only module-level callables cross the process boundary
* MET001 — metric/span names instantiate the canonical catalog
* EXC001 — no bare ``except``; ``repro.errors`` types at API boundaries
* DOC001 — estimator modules cite the theorems they implement
* DOC002 — documentation consistency (``tools/check_docs.py`` folded in)
* MET002 — the metric catalog and ``docs/observability.md`` stay in sync
"""

from __future__ import annotations

import ast
import builtins
import importlib.util
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import Finding
from .registry import FileRule, ProjectRule, register
from .source import (
    SourceFile,
    dotted_name,
    enclosing_public_function,
    from_imports,
    module_aliases,
    nested_function_names,
    walk_with_stack,
)


def _in_directory(path: str, directories: Tuple[str, ...]) -> bool:
    """Whether any ancestor directory of ``path`` has one of the names."""
    return any(part in directories for part in Path(path).parts[:-1])


def _call_line(source: SourceFile, node: ast.AST) -> Tuple[int, str]:
    line = getattr(node, "lineno", 0)
    return line, source.line_text(line)


@register
class RngSubstrateRule(FileRule):
    """RNG001: randomness must route through ``repro.sampling.rng``.

    Checkpoint/resume restores the *substrate's* generator state
    bit-for-bit; any call drawing from ``random`` or ``numpy.random``
    module state (or minting generators outside the substrate) escapes
    that restoration and silently breaks resume determinism.
    """

    id = "RNG001"
    severity = "error"
    description = (
        "no random.*/np.random.* calls outside repro/sampling/rng.py "
        "— accept a Generator or seed and use ensure_rng() instead"
    )

    #: Files allowed to touch numpy.random directly (the substrate
    #: itself; everything else coerces through ensure_rng()).
    allowed_suffixes = ("sampling/rng.py",)
    allowed_directories: Tuple[str, ...] = ()

    def check(self, source: SourceFile) -> Iterator[Finding]:
        posix = Path(source.path).as_posix()
        if posix.endswith(self.allowed_suffixes):
            return
        if _in_directory(source.path, self.allowed_directories):
            return
        aliases = module_aliases(source.tree)
        froms = from_imports(source.tree)
        imports_random = "random" in aliases.values() or any(
            module.lstrip(".") == "random" for module, _ in froms.values()
        )
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolved(node, aliases, froms)
            if resolved is None:
                continue
            stdlib_hit = imports_random and (
                resolved.startswith("random.")
            )
            numpy_hit = resolved.startswith("numpy.random.")
            if stdlib_hit or numpy_hit:
                line, text = _call_line(source, node)
                yield self.finding(
                    source.path, line,
                    f"call to {resolved}() bypasses the seeded RNG "
                    f"substrate (repro.sampling.rng); accept an "
                    f"rng/seed argument and use ensure_rng()",
                    text,
                )


def _resolved(
    call: ast.Call,
    aliases: Dict[str, str],
    froms: Dict[str, Tuple[str, str]],
) -> Optional[str]:
    from .source import resolved_call_path

    return resolved_call_path(call, aliases, froms)


@register
class ClockDisciplineRule(FileRule):
    """CLK001: the runtime deadline policy owns clocks.

    The algorithm layers must stay deterministic and deadline-driven:
    an ad-hoc ``time.time()`` there creates timing-dependent behaviour
    the checkpoint and degradation machinery cannot reproduce.  Use
    ``repro.runtime.policy.Deadline`` (injectable clock) or the
    observability stopwatch instead.
    """

    id = "CLK001"
    severity = "error"
    description = (
        "no time.time()/datetime.now()-style clock reads in repro/core/ "
        "and repro/butterfly/ — the runtime deadline policy owns clocks"
    )

    scope_directories = ("core", "butterfly")

    forbidden = frozenset({
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "time.clock_gettime", "time.clock_gettime_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    #: Message fragments subclasses override to match their layer.
    context = "in an algorithm layer"
    advice = (
        "route timing through the runtime Deadline policy or the "
        "observability stopwatch"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not _in_directory(source.path, self.scope_directories):
            return
        aliases = module_aliases(source.tree)
        froms = from_imports(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolved(node, aliases, froms)
            if resolved in self.forbidden:
                line, text = _call_line(source, node)
                verb = (
                    "sleep" if resolved == "time.sleep"
                    else "clock read"
                )
                yield self.finding(
                    source.path, line,
                    f"direct {verb} {resolved}() {self.context}; "
                    f"{self.advice}",
                    text,
                )


@register
class ServiceClockDisciplineRule(ClockDisciplineRule):
    """CLK002: service/runtime code takes injected clocks and sleeps.

    The chaos harness replays failure schedules against a virtual
    clock; a stray ``time.monotonic()`` or ``time.sleep()`` in the
    broker, breaker, or worker plumbing re-couples those scenarios to
    wall time and makes them flaky.  Accepting a clock/sleep callable
    with a ``time.monotonic`` *default* is the sanctioned pattern —
    the default is a reference, not a call, so it does not trip this
    rule.
    """

    id = "CLK002"
    severity = "error"
    description = (
        "service/runtime layers use injected clock()/sleep() "
        "callables — no direct time.* calls, so chaos scenarios stay "
        "deterministic (CLK001 extended beyond core/butterfly)"
    )

    scope_directories = ("service", "runtime")

    forbidden = ClockDisciplineRule.forbidden | frozenset({
        "time.sleep",
    })

    context = "in the service/runtime layer"
    advice = (
        "accept an injectable clock/sleep callable (default "
        "time.monotonic) so the chaos harness can control time"
    )


@register
class ProcessSeamRule(FileRule):
    """MPS001: only module-level callables cross the process boundary.

    ``multiprocessing`` pickles the callable it is handed; lambdas and
    closures are unpicklable under the spawn start method, so passing
    one compiles fine and then dies only at runtime, only on platforms
    whose default start method is ``spawn``.
    """

    id = "MPS001"
    severity = "error"
    description = (
        "worker-pool submit/map seams take module-level callables and "
        "picklable payloads only (no lambdas, closures, or raw "
        "shared-memory buffers across the process boundary)"
    )

    #: Attribute-call names treated as pool submission seams; the first
    #: positional argument must be picklable.
    submit_attrs = frozenset({
        "submit", "map", "starmap", "imap", "imap_unordered",
        "apply_async", "map_async", "starmap_async",
    })
    #: Constructors whose ``target=`` crosses the process boundary.
    process_ctors = frozenset({"Process", "Thread"})
    #: Constructors whose results are raw buffers/views over process
    #: memory.  A buffer shipped as a worker argument either fails to
    #: pickle or silently copies the backing pages; the shared-memory
    #: seam contract is to pass the *handle* (segment name + per-array
    #: shapes/dtypes) and attach inside the worker.
    buffer_ctors = frozenset({"SharedMemory", "memoryview", "frombuffer"})

    def check(self, source: SourceFile) -> Iterator[Finding]:
        nested = nested_function_names(source.tree)
        buffers = self._buffer_names(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            for seam, value in self._seam_arguments(node):
                problem = self._problem(value, nested)
                if problem is not None:
                    line, text = _call_line(source, node)
                    yield self.finding(
                        source.path, line,
                        f"{problem} passed to {seam}; spawn-method "
                        f"multiprocessing requires a module-level "
                        f"callable",
                        text,
                    )
            for seam, value in self._payload_arguments(node):
                buffer = self._buffer_problem(value, buffers)
                if buffer is not None:
                    line, text = _call_line(source, node)
                    yield self.finding(
                        source.path, line,
                        f"{buffer} crosses the {seam} process seam; "
                        f"pass the picklable shared-memory handle "
                        f"(segment name + shapes/dtypes) and attach "
                        f"inside the worker",
                        text,
                    )

    def _seam_arguments(self, node: ast.Call):
        """Yield (seam description, callable expression) pairs."""
        path = dotted_name(node.func)
        tail = path.rsplit(".", 1)[-1] if path else None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self.submit_attrs
            and node.args
        ):
            yield f"pool {node.func.attr}()", node.args[0]
        if tail in self.process_ctors:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    yield f"{tail}(target=...)", keyword.value

    def _payload_arguments(self, node: ast.Call):
        """Yield (seam description, payload expression) pairs.

        Payloads are the worker *arguments*: everything after the
        callable in a pool submit call, and the ``args=`` tuple of a
        ``Process``/``Thread`` constructor.
        """
        path = dotted_name(node.func)
        tail = path.rsplit(".", 1)[-1] if path else None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self.submit_attrs
        ):
            for arg in node.args[1:]:
                yield f"pool {node.func.attr}()", arg
        if tail in self.process_ctors:
            for keyword in node.keywords:
                if keyword.arg == "args":
                    values = (
                        keyword.value.elts
                        if isinstance(
                            keyword.value, (ast.Tuple, ast.List)
                        )
                        else [keyword.value]
                    )
                    for value in values:
                        yield f"{tail}(args=...)", value

    def _buffer_names(self, tree: ast.AST) -> Set[str]:
        """Names bound by simple assignment to a buffer constructor."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            path = dotted_name(value.func)
            tail = path.rsplit(".", 1)[-1] if path else None
            if tail not in self.buffer_ctors:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _buffer_problem(
        self, value: ast.expr, buffers: Set[str]
    ) -> Optional[str]:
        """Describe ``value`` if it is a raw buffer expression."""
        for node in ast.walk(value):
            if isinstance(node, ast.Attribute) and node.attr == "buf":
                return f"raw buffer {dotted_name(node) or 'expression'}"
            if isinstance(node, ast.Name) and node.id in buffers:
                return (
                    f"shared-memory buffer {node.id!r} "
                    f"(bound to a buffer constructor)"
                )
            if isinstance(node, ast.Call):
                path = dotted_name(node.func)
                tail = path.rsplit(".", 1)[-1] if path else None
                if tail in self.buffer_ctors:
                    return f"raw buffer from {tail}()"
        return None

    @staticmethod
    def _problem(value: ast.expr, nested: Set[str]) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "lambda"
        if isinstance(value, ast.Name) and value.id in nested:
            return f"closure {value.id!r} (defined inside a function)"
        return None


#: How each recording method maps to an instrument kind.
_RECORDING_METHODS = {
    "inc": "counter", "counter": "counter",
    "set": "gauge", "gauge": "gauge",
    "observe": "histogram", "histogram": "histogram",
    "span": "span",
}


@register
class MetricCatalogRule(FileRule):
    """MET001: recorded metric/span names instantiate the catalog.

    Off-catalog names produce series the merge/report tooling cannot
    aggregate and the docs never explain.  The catalog lives in
    ``repro.observability.catalog``; dynamic (f-string) names pass when
    their template *can* produce a cataloged name of the right kind.
    """

    id = "MET001"
    severity = "error"
    description = (
        "metric and span names must appear in the canonical catalog "
        "(repro/observability/catalog.py)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if Path(source.path).as_posix().endswith(
            "observability/catalog.py"
        ):
            return
        from ..observability import catalog

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            kind = _RECORDING_METHODS.get(node.func.attr)
            if kind is None or not node.args:
                continue
            name_node = node.args[0]
            problem = self._check_name(catalog, kind, name_node)
            if problem is not None:
                line, text = _call_line(source, node)
                yield self.finding(source.path, line, problem, text)

    @staticmethod
    def _check_name(catalog, kind: str, name_node: ast.expr):
        if isinstance(name_node, ast.Constant) and isinstance(
            name_node.value, str
        ):
            name = name_node.value
            if kind == "span":
                if not catalog.is_canonical_span(name):
                    return (
                        f"span name {name!r} is not in the canonical "
                        f"catalog (repro.observability.catalog.SPANS)"
                    )
                return None
            if not catalog.is_canonical_metric(name, kind):
                return (
                    f"{kind} name {name!r} is not in the canonical "
                    f"catalog (repro.observability.catalog.METRICS)"
                )
            return None
        if isinstance(name_node, ast.JoinedStr):
            pattern = _fstring_pattern(name_node)
            if pattern is None:
                return None
            if kind == "span":
                names = [spec.name for spec in catalog.SPANS]
                concrete = [
                    re.sub(r"<[a-z_]+>", "x", name) for name in names
                ]
            else:
                concrete = [
                    name for name, spec_kind
                    in catalog.sample_names().items()
                    if spec_kind == kind
                ]
            if not any(pattern.match(name) for name in concrete):
                return (
                    f"dynamic {kind} name template cannot produce any "
                    f"cataloged name (repro.observability.catalog)"
                )
        return None


def _fstring_pattern(node: ast.JoinedStr) -> "re.Pattern[str] | None":
    """Regex a name-template f-string can produce (None = opaque)."""
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(
            value.value, str
        ):
            parts.append(re.escape(value.value))
        elif isinstance(value, ast.FormattedValue):
            parts.append(".+")
        else:
            return None
    return re.compile("^" + "".join(parts) + "$")


#: Builtin exceptions acceptable at public boundaries: lookup/protocol
#: errors and control-flow exceptions that must not be wrapped.
_BOUNDARY_BUILTIN_ALLOWED = frozenset({
    "KeyError", "IndexError", "AttributeError", "StopIteration",
    "NotImplementedError", "KeyboardInterrupt", "SystemExit",
    "AssertionError", "GeneratorExit",
})

_BUILTIN_EXCEPTIONS = frozenset(
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)


@register
class ExceptionDisciplineRule(FileRule):
    """EXC001: no bare ``except``; library errors at API boundaries.

    Bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` and
    defeats the runtime's graceful-interrupt contract.  Public functions
    of the boundary packages (``repro/core/``, ``repro/runtime/``) must
    raise ``repro.errors`` types so callers can catch ``ReproError``
    and trust the documented hierarchy.
    """

    id = "EXC001"
    severity = "error"
    description = (
        "no bare except:; public core/runtime functions raise "
        "repro.errors types (or allowed protocol exceptions) only"
    )

    boundary_directories = ("core", "runtime")
    #: Import-module suffixes whose exception types are library-owned.
    library_module_suffixes = ("errors", "faults")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        froms = from_imports(source.tree)
        local_classes = {
            node.name for node in ast.walk(source.tree)
            if isinstance(node, ast.ClassDef)
        }
        in_boundary = _in_directory(
            source.path, self.boundary_directories
        )
        for node, stack in walk_with_stack(source.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                line, text = _call_line(source, node)
                yield self.finding(
                    source.path, line,
                    "bare except: swallows KeyboardInterrupt/SystemExit;"
                    " catch a concrete exception type",
                    text,
                )
                continue
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_name(node.exc)
            if name is None:
                continue
            if name in ("Exception", "BaseException"):
                line, text = _call_line(source, node)
                yield self.finding(
                    source.path, line,
                    f"raising generic {name} hides the failure class; "
                    f"raise a repro.errors type",
                    text,
                )
                continue
            if not in_boundary:
                continue
            function = enclosing_public_function(stack)
            if function is None or self._is_private(function):
                continue
            if self._is_allowed(name, froms, local_classes):
                continue
            line, text = _call_line(source, node)
            yield self.finding(
                source.path, line,
                f"public boundary function {function}() raises builtin "
                f"{name}; raise a repro.errors type (e.g. "
                f"ConfigurationError) so callers can catch ReproError",
                text,
            )

    @staticmethod
    def _raised_name(exc: ast.expr) -> Optional[str]:
        node = exc.func if isinstance(exc, ast.Call) else exc
        return dotted_name(node)

    @staticmethod
    def _is_private(function: str) -> bool:
        return function.startswith("_") and not (
            function.startswith("__") and function.endswith("__")
        )

    def _is_allowed(
        self,
        name: str,
        froms: Dict[str, Tuple[str, str]],
        local_classes: Set[str],
    ) -> bool:
        head = name.split(".", 1)[0]
        if head in froms:
            module, _ = froms[head]
            # Library-internal imports (relative, or absolute repro.*)
            # are library-owned types; their hierarchy is reviewed at
            # the definition site, not at every raise.
            return (
                module.startswith(".")
                or module == "repro"
                or module.startswith("repro.")
                or module.lstrip(".").endswith(
                    self.library_module_suffixes
                )
            )
        if head in local_classes:
            return True
        if name in _BUILTIN_EXCEPTIONS:
            return name in _BOUNDARY_BUILTIN_ALLOWED
        # Unknown origin (re-raised variable, attribute chain through a
        # module alias): give it the benefit of the doubt.
        return True


#: A theorem/lemma/algorithm/equation citation, or a [NN] reference.
_CITATION = re.compile(
    r"(Theorem|Thm\.|Lemma|Algorithm|Alg\.|Eq(uation)?s?\.|"
    r"Section [IVX\d]|\[\d+\])"
)


@register
class EstimatorDocstringRule(FileRule):
    """DOC001: estimator modules cite the theory they implement.

    The reproduction's correctness argument lives in the mapping from
    code to the paper's theorems; an estimator module whose docstring
    drops that mapping is unreviewable against the paper.
    """

    id = "DOC001"
    severity = "error"
    description = (
        "estimator modules carry theorem-citation module docstrings "
        "(Theorem/Lemma/Algorithm/Eq. or [NN] references)"
    )

    #: Module basenames holding estimator/theory implementations.
    estimator_basenames = frozenset({
        "mc_vp.py", "ordering_sampling.py", "ols.py",
        "karp_luby_estimator.py", "optimized_estimator.py",
        "monte_carlo.py", "karp_luby.py", "bounds.py",
    })

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if Path(source.path).name not in self.estimator_basenames:
            return
        docstring = ast.get_docstring(source.tree)
        if not docstring:
            yield self.finding(
                source.path, 1,
                "estimator module has no module docstring; document "
                "which paper theorem/algorithm it implements",
                source.line_text(1),
            )
            return
        if not _CITATION.search(docstring):
            yield self.finding(
                source.path, 1,
                "estimator module docstring cites no theorem, lemma, "
                "algorithm, equation, or [NN] reference",
                source.line_text(1),
            )


def _load_check_docs(root: Path):
    """Import ``tools/check_docs.py`` from ``root`` (None if absent)."""
    script = root / "tools" / "check_docs.py"
    if not script.exists():
        return None
    spec = importlib.util.spec_from_file_location(
        "repro_analysis_check_docs", script
    )
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@register
class DocsConsistencyRule(ProjectRule):
    """DOC002: the documentation consistency checks, as a rule.

    Folds ``tools/check_docs.py`` (README coverage of ``docs/``, link
    integrity, CLI flag sync) into the analyzer so one command gates
    CI; the standalone script keeps working unchanged.
    """

    id = "DOC002"
    severity = "error"
    description = (
        "documentation consistency: README covers docs/, links "
        "resolve, documented CLI flags exist (tools/check_docs.py)"
    )

    def check_project(self, root: Path) -> Iterator[Finding]:
        module = _load_check_docs(root)
        if module is None:
            return
        for problem in module.run_checks():
            path, _, rest = problem.partition(": ")
            known = rest and (root / path).exists()
            yield self.finding(
                path if known else "README.md",
                0,
                rest if known else problem,
                problem,
            )


@register
class CatalogDocsSyncRule(ProjectRule):
    """MET002: the metric catalog and its docs table stay in sync.

    Every name in ``repro.observability.catalog`` must appear verbatim
    in ``docs/observability.md`` — the doc is the human index of the
    catalog, and MET001 makes the catalog the gate for call sites, so
    a gap here is an undocumented (or phantom) instrument.
    """

    id = "MET002"
    severity = "error"
    description = (
        "every cataloged metric/span name appears in "
        "docs/observability.md"
    )

    def check_project(self, root: Path) -> Iterator[Finding]:
        doc_path = root / "docs" / "observability.md"
        if not doc_path.exists():
            return
        from ..observability import catalog

        text = doc_path.read_text(encoding="utf-8")
        doc_rel = "docs/observability.md"
        for spec in catalog.METRICS:
            if spec.name not in text:
                yield self.finding(
                    doc_rel, 0,
                    f"cataloged metric {spec.name!r} ({spec.kind}) is "
                    f"not documented in {doc_rel}",
                    spec.name,
                )
        for span in catalog.SPANS:
            if span.name not in text:
                yield self.finding(
                    doc_rel, 0,
                    f"cataloged span {span.name!r} is not documented "
                    f"in {doc_rel}",
                    span.name,
                )


@register
class KernelDtypeRule(FileRule):
    """DTY001: no narrow dtypes in the kernels' accumulating primitives.

    The kernel contract pins CSR structure to ``int64`` and weights to
    ``float64`` so CPU runs are bit-identical across chunk sizes and
    block orders (``docs/kernels.md``).  A ``dtype=np.int32`` on a
    ``cumsum``, an ``.astype(np.int32)`` feeding ``ufunc.reduceat`` or
    ``searchsorted``, silently truncates exactly when offsets outgrow
    the narrow range — on the large graphs where nobody is looking.
    Deliberately chunk-bounded narrow scratches stay allowed via
    ``# repro: noqa[DTY001]`` with a justifying comment.
    """

    id = "DTY001"
    severity = "error"
    description = (
        "kernel accumulators (cumsum/reduceat/searchsorted) keep the "
        "pinned wide dtypes — no int32/float32 narrowing that breaks "
        "scalar bit identity"
    )

    scope_directories = ("kernels",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        from . import dtypes

        if not _in_directory(source.path, self.scope_directories):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = None
            if isinstance(node.func, ast.Attribute):
                tail = node.func.attr
            elif isinstance(node.func, ast.Name):
                tail = node.func.id
            if tail not in dtypes.ACCUMULATOR_TAILS:
                continue
            narrow = dtypes.narrow_dtype_of_call(node)
            if narrow is not None:
                name = dtypes.dtype_name(narrow)
                line, text = _call_line(source, node)
                yield self.finding(
                    source.path, line,
                    f"narrow dtype {name} on {tail}() truncates the "
                    f"accumulator; the kernel bit-identity contract "
                    f"pins {dtypes.WIDEN[name]} — widen it or noqa "
                    f"with a bound justification",
                    text,
                )
            for arg in node.args:
                name = dtypes.astype_narrow(arg)
                if name is None:
                    continue
                line, text = _call_line(source, node)
                yield self.finding(
                    source.path, line,
                    f"operand narrowed to {name} via astype() feeds "
                    f"{tail}(); the accumulation inherits the narrow "
                    f"dtype and overflows past the {name} range — "
                    f"keep the pinned {dtypes.WIDEN[name]}",
                    text,
                )


@register
class SeamContiguityRule(FileRule):
    """SHP001: contiguous buffers only across the shm/bytes seams.

    ``np.frombuffer`` reconstructions and shared-memory publication
    assume the source bytes are one C-contiguous block.  A transpose
    or step slice handed across those seams either raises later (shm
    fill) or silently copies (``tobytes``), so the worker-side view no
    longer aliases the published segment.  ``np.frombuffer`` calls
    must also pin ``dtype=`` explicitly — the float64 default is a
    trap once a uint8 metadata strip shares the segment.
    """

    id = "SHP001"
    severity = "error"
    description = (
        "no non-contiguous views across shm/frombuffer seams, and "
        "frombuffer reconstructions pin an explicit dtype"
    )

    scope_directories = ("kernels", "runtime")

    #: Call tails whose array operands must be C-contiguous.
    seam_tails = frozenset({
        "frombuffer", "tobytes", "publish_graph",
    })

    def check(self, source: SourceFile) -> Iterator[Finding]:
        from . import dtypes

        if not _in_directory(source.path, self.scope_directories):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = None
            if isinstance(node.func, ast.Attribute):
                tail = node.func.attr
            elif isinstance(node.func, ast.Name):
                tail = node.func.id
            if tail not in self.seam_tails:
                continue
            if tail == "frombuffer" and not any(
                keyword.arg == "dtype" for keyword in node.keywords
            ) and len(node.args) < 2:
                line, text = _call_line(source, node)
                yield self.finding(
                    source.path, line,
                    "frombuffer() without an explicit dtype= defaults "
                    "to float64; reconstructions across the shm seam "
                    "must pin the dtype they were published with",
                    text,
                )
            operands: List[ast.expr] = list(node.args)
            if tail == "tobytes" and isinstance(
                node.func, ast.Attribute
            ):
                operands.append(node.func.value)
            for operand in operands:
                if dtypes.is_contiguity_fixed(operand):
                    continue
                if not dtypes.is_strided(operand):
                    continue
                line, text = _call_line(source, node)
                yield self.finding(
                    source.path, line,
                    f"non-contiguous view crosses the {tail}() seam; "
                    f"transposes/step slices copy or re-stride "
                    f"silently — wrap in np.ascontiguousarray() "
                    f"before the seam",
                    text,
                )
