"""SARIF 2.1.0 reporter.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard GitHub code scanning ingests.  The document produced here is
deliberately small and deterministic — stable key order, rules sorted
by id, results sorted like the text reporter — so the golden file in
``tests/data/`` pins the byte-level shape and CI can diff uploads.

Fresh findings become ``results``; baseline-grandfathered findings are
included with ``"baselineState": "unchanged"`` so code-scanning shows
them without failing the build, mirroring the exit-code contract.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .findings import Finding
from .registry import RULES
from .reporters import AnalysisResult

#: SARIF specification version emitted (and pinned by the tests).
SARIF_VERSION = "2.1.0"

#: Canonical schema URI for SARIF 2.1.0 documents.
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Tool name reported in the SARIF driver block.
TOOL_NAME = "repro-analysis"

#: partialFingerprints key carrying the baseline fingerprint.
FINGERPRINT_KEY = "reproAnalysis/v1"


def _rule_descriptor(rule_id: str) -> Dict[str, object]:
    rule_class = RULES.get(rule_id)
    description = (
        rule_class.description if rule_class is not None
        else "finding produced outside the rule registry"
    )
    level = (
        rule_class.severity if rule_class is not None else "error"
    )
    return {
        "id": rule_id,
        "shortDescription": {"text": description},
        "defaultConfiguration": {"level": level},
    }


def _result(
    finding: Finding, rule_index: Dict[str, int], baselined: bool
) -> Dict[str, object]:
    record: Dict[str, object] = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": finding.severity,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                    },
                }
            }
        ],
        "partialFingerprints": {
            FINGERPRINT_KEY: finding.fingerprint(),
        },
    }
    if baselined:
        record["baselineState"] = "unchanged"
    return record


def render_sarif(result: AnalysisResult) -> str:
    """The analysis result as a SARIF 2.1.0 JSON document."""
    rule_ids = sorted(
        set(result.rules_run)
        | {f.rule for f in result.findings}
        | {f.rule for f in result.grandfathered}
    )
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results: List[Dict[str, object]] = [
        _result(finding, rule_index, baselined=False)
        for finding in sorted(result.findings)
    ] + [
        _result(finding, rule_index, baselined=True)
        for finding in sorted(result.grandfathered)
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": [
                            _rule_descriptor(rule_id)
                            for rule_id in rule_ids
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)
