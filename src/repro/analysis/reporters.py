"""Text and JSON reporters for analysis results."""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from .findings import Finding

#: Schema version of the JSON report document.
REPORT_FORMAT = 2

#: Discriminator so arbitrary JSON files are rejected early.
REPORT_KIND = "repro-analysis"


@dataclass
class AnalysisResult:
    """Everything one analyzer invocation produced.

    Attributes:
        findings: Fresh findings that count against the exit code.
        grandfathered: Findings forgiven by the baseline.
        suppressed: Count of findings silenced by ``repro: noqa``.
        files_analyzed: Number of Python files in scope.
        files_parsed: Files actually parsed this run (smaller than
            ``files_analyzed`` when the summary cache served the rest,
            e.g. under ``--diff``).
        rules_run: Ids of the rules that executed, in order.
        stale_baseline: Baseline records forgiving findings that no
            longer exist (prune with ``--update-baseline``).
    """

    findings: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_analyzed: int = 0
    files_parsed: int = 0
    rules_run: List[str] = field(default_factory=list)
    stale_baseline: List[Dict[str, object]] = field(
        default_factory=list
    )

    def errors(self) -> List[Finding]:
        """Fresh findings at error severity."""
        return [f for f in self.findings if f.severity == "error"]

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 when findings fail the run.

        Warnings only fail under ``strict``.
        """
        failing = self.findings if strict else self.errors()
        return 1 if failing else 0


def render_text(result: AnalysisResult) -> str:
    """Human-readable report: one ``path:line rule message`` per line."""
    lines: List[str] = []
    for finding in sorted(result.findings):
        location = (
            f"{finding.path}:{finding.line}" if finding.line
            else finding.path
        )
        lines.append(
            f"{location}: {finding.rule} [{finding.severity}] "
            f"{finding.message}"
        )
    fresh = len(result.findings)
    summary = (
        f"repro.analysis: {fresh} finding(s) "
        f"({len(result.errors())} error(s)) in "
        f"{result.files_analyzed} file(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} noqa-suppressed")
    if result.grandfathered:
        extras.append(f"{len(result.grandfathered)} baselined")
    if extras:
        summary += f" [{', '.join(extras)}]"
    lines.append(summary)
    if result.stale_baseline:
        stale = len(result.stale_baseline)
        noun, verb = (
            ("entry", "matches") if stale == 1 else ("entries", "match")
        )
        lines.append(
            f"repro.analysis: {stale} stale baseline {noun} no "
            f"longer {verb} any finding — prune with --update-baseline"
        )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report with a stable, versioned schema.

    Top-level keys (pinned by ``tests/test_analysis.py``): ``format``,
    ``kind``, ``findings``, ``grandfathered``, ``counts``,
    ``suppressed``, ``files_analyzed``, ``files_parsed``,
    ``rules_run``, ``stale_baseline``.
    """
    counts: Dict[str, int] = dict(sorted(
        Counter(f.rule for f in result.findings).items()
    ))
    document = {
        "format": REPORT_FORMAT,
        "kind": REPORT_KIND,
        "findings": [f.to_dict() for f in sorted(result.findings)],
        "grandfathered": [
            f.to_dict() for f in sorted(result.grandfathered)
        ],
        "counts": counts,
        "suppressed": result.suppressed,
        "files_analyzed": result.files_analyzed,
        "files_parsed": result.files_parsed,
        "rules_run": list(result.rules_run),
        "stale_baseline": list(result.stale_baseline),
    }
    return json.dumps(document, indent=2, sort_keys=False)
