"""Incremental construction of uncertain bipartite graphs.

:class:`GraphBuilder` collects vertices and edges with validation at add
time and produces an immutable
:class:`~repro.graph.bipartite.UncertainBipartiteGraph`.  It is the
recommended way to assemble graphs programmatically (the dataset
generators and the hardness reduction both use it).
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from ..errors import GraphValidationError
from .bipartite import UncertainBipartiteGraph
from .edges import EdgeSpec


class GraphBuilder:
    """Mutable accumulator for building an uncertain bipartite graph.

    Example:
        >>> builder = GraphBuilder(name="figure-1")
        >>> _ = builder.add_edge("u1", "v1", weight=2.0, prob=0.5)
        >>> graph = builder.build()
        >>> graph.n_edges
        1
    """

    def __init__(self, name: str = "") -> None:
        self._name = name
        self._left: Dict[Hashable, int] = {}
        self._right: Dict[Hashable, int] = {}
        self._edges: List[EdgeSpec] = []
        self._seen_pairs: set = set()

    @property
    def n_edges(self) -> int:
        """Number of edges added so far."""
        return len(self._edges)

    def add_left_vertex(self, label: Hashable) -> "GraphBuilder":
        """Register a left-partition vertex (possibly isolated)."""
        if label in self._right:
            raise GraphValidationError(
                f"label {label!r} already belongs to the right partition"
            )
        self._left.setdefault(label, len(self._left))
        return self

    def add_right_vertex(self, label: Hashable) -> "GraphBuilder":
        """Register a right-partition vertex (possibly isolated)."""
        if label in self._left:
            raise GraphValidationError(
                f"label {label!r} already belongs to the left partition"
            )
        self._right.setdefault(label, len(self._right))
        return self

    def add_edge(
        self,
        left: Hashable,
        right: Hashable,
        weight: float,
        prob: float,
    ) -> "GraphBuilder":
        """Add one edge, implicitly registering its endpoints.

        Raises:
            GraphValidationError: For duplicate edges, non-positive or
                non-finite weights, probabilities outside ``[0, 1]``, or
                endpoints already registered on the opposite side.
        """
        weight = float(weight)
        prob = float(prob)
        if not weight > 0:
            raise GraphValidationError(
                f"edge ({left!r}, {right!r}) weight must be > 0, got {weight}"
            )
        if not 0.0 <= prob <= 1.0:
            raise GraphValidationError(
                f"edge ({left!r}, {right!r}) probability must be in [0, 1], "
                f"got {prob}"
            )
        self.add_left_vertex(left)
        self.add_right_vertex(right)
        pair = (left, right)
        if pair in self._seen_pairs:
            raise GraphValidationError(f"duplicate edge ({left!r}, {right!r})")
        self._seen_pairs.add(pair)
        self._edges.append(EdgeSpec(left, right, weight, prob))
        return self

    def build(self) -> UncertainBipartiteGraph:
        """Produce the immutable graph.

        The builder remains usable afterwards (e.g. to build a grown
        variant), since :meth:`build` copies nothing mutable into the
        resulting graph besides the label lists.
        """
        return UncertainBipartiteGraph.from_edges(
            self._edges,
            left_labels=list(self._left),
            right_labels=list(self._right),
            name=self._name,
        )
