"""Vertex priority orders (Section IV, after BFC-VP [50]).

The MC-VP baseline assigns each vertex ``u`` a priority ``o(u)``: vertices
with larger backbone degree receive larger priorities, ties broken by a
deterministic global rank.  Butterfly enumeration then only walks from a
vertex to strictly-lower-priority neighbours, which guarantees each
butterfly is produced exactly once and bounds the work per edge by the
smaller endpoint degree (Lemma IV.1).

Priorities are expressed over a *global* vertex indexing: left vertex
``u`` has global index ``u`` and right vertex ``v`` has global index
``n_left + v``.
"""

from __future__ import annotations

import numpy as np

from .bipartite import UncertainBipartiteGraph


def global_index_left(graph: UncertainBipartiteGraph, left: int) -> int:
    """Global vertex index of a left vertex (identity)."""
    return left


def global_index_right(graph: UncertainBipartiteGraph, right: int) -> int:
    """Global vertex index of a right vertex (offset by ``|L|``)."""
    return graph.n_left + right


def degree_priority(graph: UncertainBipartiteGraph) -> np.ndarray:
    """Priority array over global vertex indices.

    ``priority[x] > priority[y]`` iff vertex ``x`` has larger backbone
    degree than ``y``, with ties broken by global index (larger index wins)
    so that the order is total and deterministic.

    Returns:
        ``int64`` array of length ``n_vertices``; values are a permutation
        of ``range(n_vertices)``.
    """
    degrees = np.concatenate([graph.degrees_left(), graph.degrees_right()])
    n = degrees.shape[0]
    # Sort by (degree, global index) ascending; rank = position in that order.
    order = np.lexsort((np.arange(n), degrees))
    priority = np.empty(n, dtype=np.int64)
    priority[order] = np.arange(n)
    return priority


def expected_degree_priority(graph: UncertainBipartiteGraph) -> np.ndarray:
    """Like :func:`degree_priority` but ranking by expected degree ``d̄``.

    The expected degree is the natural analogue on uncertain graphs
    (Lemma IV.1 measures per-trial cost in expected degrees); this variant
    is exposed for ablation experiments.
    """
    degrees = np.concatenate(
        [graph.expected_degrees_left(), graph.expected_degrees_right()]
    )
    n = degrees.shape[0]
    order = np.lexsort((np.arange(n), degrees))
    priority = np.empty(n, dtype=np.int64)
    priority[order] = np.arange(n)
    return priority
