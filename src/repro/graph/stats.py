"""Summary statistics of uncertain bipartite graphs.

Used by the dataset registry to print the Table III columns and by the
experiment harness when labelling runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bipartite import UncertainBipartiteGraph


@dataclass(frozen=True)
class GraphStats:
    """The headline statistics reported in Table III plus a few extras."""

    name: str
    n_edges: int
    n_left: int
    n_right: int
    mean_weight: float
    mean_prob: float
    max_degree_left: int
    max_degree_right: int
    #: Σ min-side expected squared degree — the per-trial OS cost driver
    #: of Lemma V.1.
    os_cost_proxy: float
    #: Σ_e F_deg(u, v) — the per-trial MC-VP cost driver of Lemma IV.1.
    mcvp_cost_proxy: float

    def as_row(self) -> tuple:
        """Row for the Table III renderer."""
        return (
            self.name,
            self.n_edges,
            self.n_left,
            self.n_right,
            f"{self.mean_weight:.3f}",
            f"{self.mean_prob:.3f}",
        )


def compute_stats(graph: UncertainBipartiteGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    deg_left = graph.degrees_left()
    deg_right = graph.degrees_right()
    exp_left = graph.expected_degrees_left()
    exp_right = graph.expected_degrees_right()
    os_cost = float(min((exp_left**2).sum(), (exp_right**2).sum()))

    # Lemma IV.1: per edge, the expected degree of the lower-priority
    # endpoint; priorities grow with degree, so the lower-priority endpoint
    # is the smaller-degree one (ties cost the same either way).
    if graph.n_edges:
        left_deg_per_edge = deg_left[graph.edge_left]
        right_deg_per_edge = deg_right[graph.edge_right]
        pick_left = left_deg_per_edge <= right_deg_per_edge
        mcvp_cost = float(
            np.where(
                pick_left,
                exp_left[graph.edge_left],
                exp_right[graph.edge_right],
            ).sum()
        )
    else:
        mcvp_cost = 0.0

    return GraphStats(
        name=graph.name or "<unnamed>",
        n_edges=graph.n_edges,
        n_left=graph.n_left,
        n_right=graph.n_right,
        mean_weight=float(graph.weights.mean()) if graph.n_edges else 0.0,
        mean_prob=float(graph.probs.mean()) if graph.n_edges else 0.0,
        max_degree_left=int(deg_left.max(initial=0)),
        max_degree_right=int(deg_right.max(initial=0)),
        os_cost_proxy=os_cost,
        mcvp_cost_proxy=mcvp_cost,
    )
