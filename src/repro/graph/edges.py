"""Edge value types for uncertain bipartite graphs.

An edge connects a *left* vertex to a *right* vertex and carries a strictly
positive weight together with an existence probability in ``[0, 1]``
(Definition 1 of the paper).  :class:`EdgeSpec` is the label-level
description used when building graphs; inside a built graph edges are
referred to by their integer index.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, NamedTuple


class EdgeSpec(NamedTuple):
    """A label-level edge description used as graph-construction input.

    Attributes:
        left: Label of the left-partition endpoint (any hashable).
        right: Label of the right-partition endpoint (any hashable).
        weight: Edge weight ``w(e) > 0``.
        prob: Existence probability ``p(e)`` in ``[0, 1]``.
    """

    left: Hashable
    right: Hashable
    weight: float
    prob: float


def as_edge_specs(edges: Iterable) -> Iterator[EdgeSpec]:
    """Normalise an iterable of edge descriptions into :class:`EdgeSpec`.

    Accepts 4-tuples ``(left, right, weight, prob)`` or existing
    :class:`EdgeSpec` instances.

    Raises:
        ValueError: If an item does not have exactly four components.
    """
    for item in edges:
        if isinstance(item, EdgeSpec):
            yield item
            continue
        try:
            left, right, weight, prob = item
        except (TypeError, ValueError) as exc:
            raise ValueError(
                "each edge must be a (left, right, weight, prob) 4-tuple, "
                f"got {item!r}"
            ) from exc
        yield EdgeSpec(left, right, float(weight), float(prob))
