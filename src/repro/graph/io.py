"""Plain-text serialisation of uncertain bipartite graphs.

The on-disk format is a tab-separated edge list with a two-line header::

    # ubg v1 <name>
    # left <tab> right <tab> weight <tab> prob
    u1	v1	2.0	0.5
    u1	v2	2.0	0.6

Labels are written with ``repr``-free plain ``str``; on load they come
back as strings (callers that need richer label types should rebuild the
graph themselves).  Lines starting with ``#`` after the header are
ignored, as are blank lines.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

from ..errors import GraphFormatError
from .bipartite import UncertainBipartiteGraph

_MAGIC = "# ubg v1"

PathOrFile = Union[str, Path, TextIO]


def save_graph(graph: UncertainBipartiteGraph, target: PathOrFile) -> None:
    """Write ``graph`` to ``target`` (path or text file object)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            _write(graph, handle)
    else:
        _write(graph, target)


def load_graph(source: PathOrFile) -> UncertainBipartiteGraph:
    """Read a graph previously written by :func:`save_graph`.

    Raises:
        GraphFormatError: On missing magic header, malformed rows, or
            unparsable numeric fields.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read(handle)
    return _read(source)


def dumps_graph(graph: UncertainBipartiteGraph) -> str:
    """Serialise ``graph`` to a string (same format as :func:`save_graph`)."""
    buffer = io.StringIO()
    _write(graph, buffer)
    return buffer.getvalue()


def loads_graph(text: str) -> UncertainBipartiteGraph:
    """Parse a graph from a string produced by :func:`dumps_graph`."""
    return _read(io.StringIO(text))


def _write(graph: UncertainBipartiteGraph, handle: TextIO) -> None:
    handle.write(f"{_MAGIC} {graph.name}\n")
    handle.write("# left\tright\tweight\tprob\n")
    for spec in graph.iter_edge_specs():
        handle.write(
            f"{spec.left}\t{spec.right}\t{spec.weight!r}\t{spec.prob!r}\n"
        )


def _read(handle: TextIO) -> UncertainBipartiteGraph:
    first = handle.readline()
    if not first.startswith(_MAGIC):
        raise GraphFormatError(
            f"missing {_MAGIC!r} header; got {first[:40]!r}"
        )
    name = first[len(_MAGIC):].strip()
    edges = []
    for lineno, line in enumerate(handle, start=2):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 4:
            raise GraphFormatError(
                f"line {lineno}: expected 4 tab-separated fields, "
                f"got {len(parts)}"
            )
        left, right, weight_text, prob_text = parts
        try:
            weight = float(weight_text)
            prob = float(prob_text)
        except ValueError as exc:
            raise GraphFormatError(
                f"line {lineno}: bad numeric field ({exc})"
            ) from None
        edges.append((left, right, weight, prob))
    return UncertainBipartiteGraph.from_edges(edges, name=name)
