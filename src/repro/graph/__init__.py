"""Graph substrate: uncertain bipartite weighted networks (Definition 1).

Public surface:

* :class:`UncertainBipartiteGraph` — the immutable core data structure.
* :class:`GraphBuilder` — incremental, validated construction.
* :class:`EdgeSpec` — label-level edge description.
* :func:`save_graph` / :func:`load_graph` (and string variants) — TSV I/O.
* :func:`sample_vertices`, :func:`map_edges`, :func:`backbone` — views.
* :func:`degree_priority` — BFC-VP vertex priorities.
* :func:`compute_stats` — Table III statistics.
"""

from .bipartite import UncertainBipartiteGraph
from .builder import GraphBuilder
from .edges import EdgeSpec, as_edge_specs
from .io import dumps_graph, load_graph, loads_graph, save_graph
from .priority import (
    degree_priority,
    expected_degree_priority,
    global_index_left,
    global_index_right,
)
from .stats import GraphStats, compute_stats
from .views import backbone, map_edges, sample_vertices

__all__ = [
    "UncertainBipartiteGraph",
    "GraphBuilder",
    "EdgeSpec",
    "as_edge_specs",
    "save_graph",
    "load_graph",
    "dumps_graph",
    "loads_graph",
    "sample_vertices",
    "map_edges",
    "backbone",
    "degree_priority",
    "expected_degree_priority",
    "global_index_left",
    "global_index_right",
    "GraphStats",
    "compute_stats",
]
