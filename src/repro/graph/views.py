"""Derived graphs: vertex-induced subsampling and simple transforms.

The scalability experiment (Figure 9) forms new datasets by "randomly
choosing 25%, 50%, 75%, 100% of vertices"; :func:`sample_vertices`
implements exactly that — an induced subgraph on a uniform vertex sample.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import GraphValidationError
from ..sampling.rng import RngLike, ensure_rng
from .bipartite import UncertainBipartiteGraph


def sample_vertices(
    graph: UncertainBipartiteGraph,
    fraction: float,
    rng: RngLike = None,
) -> UncertainBipartiteGraph:
    """Induced subgraph on a uniform sample of vertices from each side.

    Args:
        graph: Source graph.
        fraction: Fraction of vertices to keep on each side, in ``(0, 1]``.
            Each side keeps ``max(1, round(fraction * n))`` vertices.
        rng: Seed or generator, coerced via
            :func:`repro.sampling.rng.ensure_rng` (pass a seed for
            reproducibility).

    Returns:
        A new graph containing the sampled vertices (including any that end
        up isolated) and every edge whose both endpoints were kept.
    """
    if not 0.0 < fraction <= 1.0:
        raise GraphValidationError(f"fraction must be in (0, 1], got {fraction}")
    if fraction == 1.0:
        return graph

    rng = ensure_rng(rng)
    keep_left = _sample_indices(graph.n_left, fraction, rng)
    keep_right = _sample_indices(graph.n_right, fraction, rng)
    left_mask = np.zeros(graph.n_left, dtype=bool)
    left_mask[keep_left] = True
    right_mask = np.zeros(graph.n_right, dtype=bool)
    right_mask[keep_right] = True

    edge_mask = left_mask[graph.edge_left] & right_mask[graph.edge_right]
    new_left_of = -np.ones(graph.n_left, dtype=np.int64)
    new_left_of[keep_left] = np.arange(len(keep_left))
    new_right_of = -np.ones(graph.n_right, dtype=np.int64)
    new_right_of[keep_right] = np.arange(len(keep_right))

    return UncertainBipartiteGraph(
        [graph.left_label(int(i)) for i in keep_left],
        [graph.right_label(int(i)) for i in keep_right],
        new_left_of[graph.edge_left[edge_mask]],
        new_right_of[graph.edge_right[edge_mask]],
        graph.weights[edge_mask],
        graph.probs[edge_mask],
        name=f"{graph.name}@{fraction:.0%}" if graph.name else "",
    )


def _sample_indices(
    n: int, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Sorted uniform sample of ``max(1, round(fraction*n))`` indices."""
    k = max(1, int(round(fraction * n)))
    chosen = rng.choice(n, size=min(k, n), replace=False)
    return np.sort(chosen)


def map_edges(
    graph: UncertainBipartiteGraph,
    weight_fn: Callable[[float], float] | None = None,
    prob_fn: Callable[[float], float] | None = None,
    name: str | None = None,
) -> UncertainBipartiteGraph:
    """Return a copy of ``graph`` with per-edge weight/probability rewrites.

    Useful for what-if analyses, e.g. re-weighting cold items in the
    recommendation application or flattening all probabilities to 1 to
    obtain a deterministic variant.

    Args:
        graph: Source graph (unmodified).
        weight_fn: Optional scalar map applied to every weight.
        prob_fn: Optional scalar map applied to every probability.
        name: Optional new name; defaults to the source name.
    """
    weights = graph.weights.copy()
    probs = graph.probs.copy()
    if weight_fn is not None:
        weights = np.array([weight_fn(float(w)) for w in weights])
    if prob_fn is not None:
        probs = np.array([prob_fn(float(p)) for p in probs])
    return UncertainBipartiteGraph(
        graph.left_labels,
        graph.right_labels,
        graph.edge_left.copy(),
        graph.edge_right.copy(),
        weights,
        probs,
        name=graph.name if name is None else name,
    )


def backbone(graph: UncertainBipartiteGraph) -> UncertainBipartiteGraph:
    """The backbone graph ``H``: identical structure, all probabilities 1.

    The MPMB of a backbone graph is the deterministic maximum-weight
    butterfly (with probability 1), which makes this transform handy for
    sanity checks and tests.
    """
    return map_edges(
        graph,
        prob_fn=lambda _p: 1.0,
        name=f"{graph.name}-backbone" if graph.name else "backbone",
    )
