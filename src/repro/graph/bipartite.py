"""The uncertain bipartite weighted network (Definition 1).

:class:`UncertainBipartiteGraph` is the central data structure of the
library.  It stores an immutable edge list in numpy arrays (endpoint
indices, weights, probabilities) and lazily derives the indexes the MPMB
algorithms need: adjacency lists for both partitions, degree-based vertex
priorities, weight-sorted edge order, and the three-largest-weight prune
bound of Section V-B.

Vertices are identified by arbitrary hashable *labels* at the API surface
and by dense integer indices internally; all algorithm code works on
indices and the result types translate back to labels on demand.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import GraphValidationError
from .edges import EdgeSpec, as_edge_specs

#: Adjacency entry: (neighbour vertex index on the other side, edge index).
AdjEntry = Tuple[int, int]


class UncertainBipartiteGraph:
    """An immutable uncertain bipartite weighted network ``G=(V=(L,R),E,p,w)``.

    Construct instances with :meth:`from_edges` (or the incremental
    :class:`~repro.graph.builder.GraphBuilder`); the raw constructor expects
    pre-validated arrays and is considered internal.

    The *backbone graph* ``H`` of the paper is this same object viewed
    deterministically: every accessor that ignores ``probs`` (adjacency,
    weights, degrees) describes the backbone.
    """

    __slots__ = (
        "_left_labels",
        "_right_labels",
        "_edge_left",
        "_edge_right",
        "_weights",
        "_probs",
        "_left_index",
        "_right_index",
        "_adj_left",
        "_adj_right",
        "_edge_lookup",
        "_weight_order",
        "_name",
    )

    def __init__(
        self,
        left_labels: Sequence[Hashable],
        right_labels: Sequence[Hashable],
        edge_left: np.ndarray,
        edge_right: np.ndarray,
        weights: np.ndarray,
        probs: np.ndarray,
        name: str = "",
    ) -> None:
        self._left_labels: List[Hashable] = list(left_labels)
        self._right_labels: List[Hashable] = list(right_labels)
        self._edge_left = np.asarray(edge_left, dtype=np.int64)
        self._edge_right = np.asarray(edge_right, dtype=np.int64)
        self._weights = np.asarray(weights, dtype=np.float64)
        self._probs = np.asarray(probs, dtype=np.float64)
        self._name = name
        self._left_index: Dict[Hashable, int] = {
            label: i for i, label in enumerate(self._left_labels)
        }
        self._right_index: Dict[Hashable, int] = {
            label: i for i, label in enumerate(self._right_labels)
        }
        self._validate()
        # Lazily built caches.
        self._adj_left: List[List[AdjEntry]] | None = None
        self._adj_right: List[List[AdjEntry]] | None = None
        self._edge_lookup: Dict[Tuple[int, int], int] | None = None
        self._weight_order: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable,
        left_labels: Sequence[Hashable] | None = None,
        right_labels: Sequence[Hashable] | None = None,
        name: str = "",
    ) -> "UncertainBipartiteGraph":
        """Build a graph from ``(left, right, weight, prob)`` tuples.

        Args:
            edges: Iterable of 4-tuples or :class:`EdgeSpec` items.
            left_labels: Optional explicit left-vertex ordering; labels seen
                in the edge list but missing here raise
                :class:`GraphValidationError`.  When omitted, labels are
                collected in first-seen order (so isolated vertices cannot
                exist without explicit label lists).
            right_labels: Same for the right partition.
            name: Optional human-readable dataset name.
        """
        specs = list(as_edge_specs(edges))
        if left_labels is None:
            left_labels = _first_seen(spec.left for spec in specs)
        if right_labels is None:
            right_labels = _first_seen(spec.right for spec in specs)
        left_index = {label: i for i, label in enumerate(left_labels)}
        right_index = {label: i for i, label in enumerate(right_labels)}
        if len(left_index) != len(left_labels):
            raise GraphValidationError("duplicate labels in left partition")
        if len(right_index) != len(right_labels):
            raise GraphValidationError("duplicate labels in right partition")

        m = len(specs)
        edge_left = np.empty(m, dtype=np.int64)
        edge_right = np.empty(m, dtype=np.int64)
        weights = np.empty(m, dtype=np.float64)
        probs = np.empty(m, dtype=np.float64)
        for i, spec in enumerate(specs):
            try:
                edge_left[i] = left_index[spec.left]
            except KeyError:
                raise GraphValidationError(
                    f"edge endpoint {spec.left!r} is not a left-partition label"
                ) from None
            try:
                edge_right[i] = right_index[spec.right]
            except KeyError:
                raise GraphValidationError(
                    f"edge endpoint {spec.right!r} is not a right-partition label"
                ) from None
            weights[i] = spec.weight
            probs[i] = spec.prob
        return cls(
            list(left_labels), list(right_labels),
            edge_left, edge_right, weights, probs, name=name,
        )

    def _validate(self) -> None:
        m = self.n_edges
        arrays = (self._edge_left, self._edge_right, self._weights, self._probs)
        if any(a.shape != (m,) for a in arrays):
            raise GraphValidationError("edge arrays must share one length")
        if m:
            if self._edge_left.min(initial=0) < 0 or (
                self._edge_left.max(initial=-1) >= self.n_left
            ):
                raise GraphValidationError("left endpoint index out of range")
            if self._edge_right.min(initial=0) < 0 or (
                self._edge_right.max(initial=-1) >= self.n_right
            ):
                raise GraphValidationError("right endpoint index out of range")
            if np.any(~np.isfinite(self._weights)) or np.any(self._weights <= 0):
                raise GraphValidationError(
                    "edge weights must be finite and strictly positive "
                    "(the Section V-B prune bound assumes positive weights)"
                )
            if np.any(~np.isfinite(self._probs)) or np.any(
                (self._probs < 0) | (self._probs > 1)
            ):
                raise GraphValidationError("edge probabilities must lie in [0, 1]")
            pairs = set(zip(self._edge_left.tolist(), self._edge_right.tolist()))
            if len(pairs) != m:
                raise GraphValidationError("duplicate (left, right) edge")
        overlap = set(self._left_labels) & set(self._right_labels)
        if overlap:
            raise GraphValidationError(
                f"labels appear in both partitions: {sorted(map(repr, overlap))[:5]}"
            )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable dataset name (may be empty)."""
        return self._name

    @property
    def n_left(self) -> int:
        """Number of left-partition vertices ``|L|``."""
        return len(self._left_labels)

    @property
    def n_right(self) -> int:
        """Number of right-partition vertices ``|R|``."""
        return len(self._right_labels)

    @property
    def n_vertices(self) -> int:
        """Total vertex count ``|V| = |L| + |R|``."""
        return self.n_left + self.n_right

    @property
    def n_edges(self) -> int:
        """Number of edges ``|E|``."""
        return int(self._weights.shape[0])

    @property
    def weights(self) -> np.ndarray:
        """Read-only weight array indexed by edge index."""
        view = self._weights.view()
        view.flags.writeable = False
        return view

    @property
    def probs(self) -> np.ndarray:
        """Read-only probability array indexed by edge index."""
        view = self._probs.view()
        view.flags.writeable = False
        return view

    @property
    def edge_left(self) -> np.ndarray:
        """Read-only left-endpoint index array, indexed by edge index."""
        view = self._edge_left.view()
        view.flags.writeable = False
        return view

    @property
    def edge_right(self) -> np.ndarray:
        """Read-only right-endpoint index array, indexed by edge index."""
        view = self._edge_right.view()
        view.flags.writeable = False
        return view

    def left_label(self, index: int) -> Hashable:
        """Label of the left vertex at ``index``."""
        return self._left_labels[index]

    def right_label(self, index: int) -> Hashable:
        """Label of the right vertex at ``index``."""
        return self._right_labels[index]

    def left_index(self, label: Hashable) -> int:
        """Dense index of the left vertex with ``label``."""
        try:
            return self._left_index[label]
        except KeyError:
            raise KeyError(f"unknown left-partition label {label!r}") from None

    def right_index(self, label: Hashable) -> int:
        """Dense index of the right vertex with ``label``."""
        try:
            return self._right_index[label]
        except KeyError:
            raise KeyError(f"unknown right-partition label {label!r}") from None

    @property
    def left_labels(self) -> Tuple[Hashable, ...]:
        """All left-partition labels in index order."""
        return tuple(self._left_labels)

    @property
    def right_labels(self) -> Tuple[Hashable, ...]:
        """All right-partition labels in index order."""
        return tuple(self._right_labels)

    def edge_endpoints(self, edge: int) -> Tuple[int, int]:
        """``(left_index, right_index)`` of an edge."""
        return int(self._edge_left[edge]), int(self._edge_right[edge])

    def edge_spec(self, edge: int) -> EdgeSpec:
        """Label-level description of an edge."""
        u, v = self.edge_endpoints(edge)
        return EdgeSpec(
            self._left_labels[u],
            self._right_labels[v],
            float(self._weights[edge]),
            float(self._probs[edge]),
        )

    def iter_edge_specs(self) -> Iterable[EdgeSpec]:
        """Iterate all edges as label-level :class:`EdgeSpec` items."""
        return (self.edge_spec(e) for e in range(self.n_edges))

    # ------------------------------------------------------------------
    # Derived indexes (lazy, cached)
    # ------------------------------------------------------------------

    @property
    def adjacency_left(self) -> List[List[AdjEntry]]:
        """For each left vertex, its ``(right_index, edge_index)`` list."""
        if self._adj_left is None:
            adj: List[List[AdjEntry]] = [[] for _ in range(self.n_left)]
            for e in range(self.n_edges):
                adj[self._edge_left[e]].append((int(self._edge_right[e]), e))
            self._adj_left = adj
        return self._adj_left

    @property
    def adjacency_right(self) -> List[List[AdjEntry]]:
        """For each right vertex, its ``(left_index, edge_index)`` list."""
        if self._adj_right is None:
            adj: List[List[AdjEntry]] = [[] for _ in range(self.n_right)]
            for e in range(self.n_edges):
                adj[self._edge_right[e]].append((int(self._edge_left[e]), e))
            self._adj_right = adj
        return self._adj_right

    def edge_between(self, left: int, right: int) -> int | None:
        """Edge index between two vertex indices, or ``None`` if absent."""
        if self._edge_lookup is None:
            self._edge_lookup = {
                (int(self._edge_left[e]), int(self._edge_right[e])): e
                for e in range(self.n_edges)
            }
        return self._edge_lookup.get((left, right))

    @property
    def edges_by_weight_desc(self) -> np.ndarray:
        """Edge indices sorted by weight descending (Section V-B ordering).

        Ties break by edge index so the order is deterministic.
        """
        if self._weight_order is None:
            # numpy's stable sort on -weights keeps index order within ties.
            self._weight_order = np.argsort(-self._weights, kind="stable")
            self._weight_order.flags.writeable = False
        return self._weight_order

    def top_weight_sum(self, k: int = 3) -> float:
        """Sum of the ``k`` largest edge weights (``w̄`` with ``k=3``).

        This is the Section V-B prune constant: any butterfly containing an
        edge of weight ``w`` weighs at most ``w + top_weight_sum(3)``.
        """
        if self.n_edges == 0:
            return 0.0
        order = self.edges_by_weight_desc
        return float(self._weights[order[:k]].sum())

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------

    def degree_left(self, index: int) -> int:
        """Backbone degree of a left vertex."""
        return len(self.adjacency_left[index])

    def degree_right(self, index: int) -> int:
        """Backbone degree of a right vertex."""
        return len(self.adjacency_right[index])

    def degrees_left(self) -> np.ndarray:
        """Backbone degrees of all left vertices."""
        return np.bincount(self._edge_left, minlength=self.n_left)

    def degrees_right(self) -> np.ndarray:
        """Backbone degrees of all right vertices."""
        return np.bincount(self._edge_right, minlength=self.n_right)

    def expected_degrees_left(self) -> np.ndarray:
        """Expected degrees ``d̄(u) = Σ p(e)`` over left vertices (Lemma IV.1)."""
        return np.bincount(
            self._edge_left, weights=self._probs, minlength=self.n_left
        )

    def expected_degrees_right(self) -> np.ndarray:
        """Expected degrees ``d̄(v) = Σ p(e)`` over right vertices."""
        return np.bincount(
            self._edge_right, weights=self._probs, minlength=self.n_right
        )

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<UncertainBipartiteGraph{label} |L|={self.n_left} "
            f"|R|={self.n_right} |E|={self.n_edges}>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainBipartiteGraph):
            return NotImplemented
        return (
            self._left_labels == other._left_labels
            and self._right_labels == other._right_labels
            and np.array_equal(self._edge_left, other._edge_left)
            and np.array_equal(self._edge_right, other._edge_right)
            and np.array_equal(self._weights, other._weights)
            and np.array_equal(self._probs, other._probs)
        )

    def __hash__(self) -> int:  # graphs are mutable-cache objects
        return id(self)


def _first_seen(items: Iterable[Hashable]) -> List[Hashable]:
    """Collect unique items preserving first-seen order."""
    seen: Dict[Hashable, None] = {}
    for item in items:
        seen.setdefault(item, None)
    return list(seen)
