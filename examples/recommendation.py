#!/usr/bin/env python3
"""Use case 1 (Figure 2): MPMB-backed recommendations.

Reproduces the paper's motivating scenario: hot items (football, Harry
Potter) dominate plain most-probable butterflies, but once cold items
earn a reward weight, the *maximum weighted* most-probable butterfly
surfaces the skating/chess agreement between Alice and Bob — nicher and
more valuable for recommendation.

Run:
    python examples/recommendation.py
"""

from repro.apps import build_interest_graph, recommend
from repro.core import find_mpmb

# The Figure 2 toy world: Alice and Bob share both hot and cold tastes;
# a crowd of other users all like the hot items, which is exactly the
# "common phenomenon, worthless to recommend" the paper describes.
INTERACTIONS = [
    ("alice", "football", 0.72),
    ("alice", "harry-potter", 0.72),
    ("alice", "skating", 0.70),
    ("bob", "football", 0.72),
    ("bob", "harry-potter", 0.72),
    ("bob", "chess", 0.70),
    ("bob", "skating", 0.70),
    ("alice", "chess", 0.70),
    # Bob's extra niche interest — a recommendation candidate for Alice.
    ("bob", "origami", 0.60),
    # The crowd: every extra user likes the two hot items.
    *[
        (f"user{i}", item, 0.8)
        for i in range(12)
        for item in ("football", "harry-potter")
    ],
]


def main() -> None:
    print("=== Without cold-item reward (Figure 2(a)) ===")
    flat = build_interest_graph(INTERACTIONS, cold_reward=0.0)
    result = find_mpmb(flat, method="ols", n_trials=4_000, rng=11)
    best = result.best
    assert best is not None
    print(
        f"Most probable butterfly: {best.labels(flat)} "
        f"(weight {best.weight:.2f}, P={result.best_probability:.3f})"
    )
    print("-> hot items win; with equal weights the butterfly tells us "
          "little.\n")

    print("=== With cold-item reward (Figure 2(b)) ===")
    weighted = build_interest_graph(INTERACTIONS, cold_reward=2.0)
    result = find_mpmb(weighted, method="ols", n_trials=4_000, rng=11)
    best = result.best
    assert best is not None
    print(
        f"Maximum weighted most probable butterfly: {best.labels(weighted)} "
        f"(weight {best.weight:.2f}, P={result.best_probability:.3f})"
    )
    print("-> the niche skating/chess agreement now outweighs the hot "
          "items.\n")

    print("=== Recommendations for alice ===")
    for rec in recommend(
        INTERACTIONS, for_user="alice", k_butterflies=5,
        cold_reward=2.0, n_trials=4_000, rng=11,
    ):
        print(
            f"  recommend {rec.item!r} (via {rec.peer}, agreeing on "
            f"{rec.via_items}, P={rec.probability:.3f}, "
            f"weight={rec.weight:.2f})"
        )


if __name__ == "__main__":
    main()
