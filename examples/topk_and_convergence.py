#!/usr/bin/env python3
"""Top-k MPMBs and convergence monitoring on a realistic workload.

Loads the MovieLens-like bench dataset, mines the top-5 MPMBs with OLS
(Section VII), then traces the convergence of the best butterfly's
estimate through the sampling phase and checks it settles inside the
paper's ±2ε band (the Figure 11 methodology).

Run:
    python examples/topk_and_convergence.py
"""

from repro.core import find_top_k_mpmb, ordering_listing_sampling
from repro.core.bounds import monte_carlo_trial_bound
from repro.datasets import load_dataset


def main() -> None:
    graph = load_dataset("movielens", profile="bench", rng=0)
    print(f"Dataset: {graph!r}\n")

    print("=== Top-5 MPMBs (OLS, Section VII) ===")
    top = find_top_k_mpmb(
        graph, 5, method="ols", n_trials=6_000, n_prepare=150, rng=21
    )
    for rank, (butterfly, probability) in enumerate(top, start=1):
        u1, u2, v1, v2 = butterfly.labels(graph)
        print(
            f"  #{rank}: users ({u1}, {u2}) x items ({v1}, {v2})  "
            f"weight={butterfly.weight:g}  P={probability:.4f}"
        )

    best_key = top[0][0].key
    mu = max(top[0][1], 1e-3)
    epsilon = delta = 0.2
    bound = monte_carlo_trial_bound(mu, epsilon, delta)
    print(
        f"\nTheorem IV.1: certifying P(B)≈{mu:.3f} at "
        f"eps=delta={epsilon} needs N >= {bound} trials."
    )

    print(f"Tracing convergence over {2 * bound} trials "
          "(twice the bound, as in Figure 11):")
    result = ordering_listing_sampling(
        graph, 2 * bound, n_prepare=150, rng=22, track=[best_key],
        checkpoints=10,
    )
    trace = result.traces[best_key]
    final = trace.final_estimate
    for n_trials, estimate in trace.checkpoints:
        marker = "*" if abs(estimate - final) <= epsilon * final else " "
        print(f"  after {n_trials:6d} trials: P̂ = {estimate:.4f} {marker}")
    in_band = trace.within_band(final, epsilon, after_fraction=0.5)
    print(
        f"\nSecond half inside the ±{epsilon:.0%} band around "
        f"{final:.4f}: {in_band}"
    )


if __name__ == "__main__":
    main()
