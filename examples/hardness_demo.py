#!/usr/bin/env python3
"""The Lemma III.1 reduction, executable.

Builds the Section III-B gadget network for a monotone 2-CNF, computes
the target butterfly's exact maximum-probability, and confirms it equals
``#models / 2^n`` — i.e. computing P(B) exactly solves Monotone #2-SAT,
which is why the problem is #P-hard and why the paper resorts to
sampling.

Run:
    python examples/hardness_demo.py
"""

from repro.core import exact_probability, find_mpmb
from repro.hardness import (
    Monotone2SAT,
    build_reduction,
    has_spurious_butterflies,
)


def main() -> None:
    # F = (y1 ∨ y2) ∧ (y2 ∨ y3) ∧ (y4)
    formula = Monotone2SAT.from_clauses(4, [(1, 2), (2, 3), (4, 4)])
    print(f"Formula over {formula.n_vars} variables, "
          f"{formula.n_clauses} clauses")
    count = formula.count_models()
    print(f"Brute-force model count: {count} / {2 ** formula.n_vars}")

    instance = build_reduction(formula)
    graph = instance.graph
    print(f"\nGadget network: {graph!r}")
    print(f"Target butterfly: {instance.target.labels(graph)} "
          f"(weight {instance.target.weight:g})")
    for clause, butterfly in zip(
        formula.clauses, instance.clause_butterflies
    ):
        print(f"  clause {clause} -> gadget {butterfly.labels(graph)} "
              f"(weight {butterfly.weight:g})")
    assert not has_spurious_butterflies(instance), (
        "this instance should contain only the intended gadgets"
    )

    exact = exact_probability(graph, instance.target)
    expected = instance.expected_target_probability()
    print(f"\nExact P(target is maximum) = {exact:.6f}")
    print(f"count / 2^n                = {expected:.6f}")
    assert abs(exact - expected) < 1e-12

    # A sampling method approximates the same value — i.e. the samplers
    # are approximate #2-SAT counters on gadget networks.
    result = find_mpmb(graph, method="os", n_trials=30_000, rng=13)
    estimate = result.probability(instance.target)
    print(f"OS estimate (30 000 trials) = {estimate:.4f}")
    print("\nComputing P(B) exactly would count 2-SAT models: #P-hard.")


if __name__ == "__main__":
    main()
