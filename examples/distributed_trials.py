#!/usr/bin/env python3
"""Distributing MPMB trials across workers (and other production tricks).

Long certification runs (Theorem IV.1 budgets reach 10^5+ trials for
small probabilities) can be split across processes or machines: each
worker runs the same method with an independent spawned RNG stream,
persists its result as JSON, and the coordinator pools them with
trial-weighted averaging.  This example simulates three workers in one
process, then runs the real fault-tolerant worker pool — including a
worker that crashes once and is retried — and also demonstrates the
single-butterfly conditional query, antithetic variance reduction, and
repetition-based error bars.

Run:
    python examples/distributed_trials.py
"""

import tempfile
from pathlib import Path

from repro import (
    FaultPlan,
    GraphBuilder,
    make_butterfly,
    ordering_sampling,
    run_parallel_trials,
)
from repro.core import (
    estimate_probability,
    load_result,
    merge_results,
    save_result,
)
from repro.experiments import repeat_method
from repro.sampling import spawn_rngs

FIGURE_1_EDGES = [
    ("u1", "v1", 2, 0.5), ("u1", "v2", 2, 0.6), ("u1", "v3", 1, 0.8),
    ("u2", "v1", 3, 0.3), ("u2", "v2", 3, 0.4), ("u2", "v3", 1, 0.7),
]
EXACT = 0.11424  # P(B(u1,u2,v2,v3)), from the exact solver


def main() -> None:
    builder = GraphBuilder(name="figure-1")
    for left, right, weight, prob in FIGURE_1_EDGES:
        builder.add_edge(left, right, weight=weight, prob=prob)
    graph = builder.build()
    key = (0, 1, 1, 2)

    # --- Three "workers", each with an independent RNG stream ---------
    streams = spawn_rngs(2024, 3)
    with tempfile.TemporaryDirectory() as workdir:
        paths = []
        for worker, stream in enumerate(streams):
            result = ordering_sampling(graph, 4_000, rng=stream)
            path = Path(workdir) / f"worker{worker}.json"
            save_result(result, path)
            paths.append(path)
            print(
                f"worker {worker}: 4000 trials, "
                f"P̂ = {result.probability(key):.4f} -> {path.name}"
            )

        # --- Coordinator: reload and pool --------------------------------
        pooled = load_result(paths[0], graph)
        for path in paths[1:]:
            pooled = merge_results(pooled, load_result(path, graph))
    print(
        f"pooled    : {pooled.n_trials} trials, "
        f"P̂ = {pooled.probability(key):.4f}  (exact {EXACT})\n"
    )

    # --- The real fault-tolerant pool (with an injected crash) --------
    # Worker 0's first attempt dies hard; the pool retries it with
    # backoff on the same RNG stream, so the pooled estimate is
    # identical to a fault-free run.
    survived = run_parallel_trials(
        graph, 12_000, 3, method="os", rng=2024,
        faults=FaultPlan(worker_crash_attempts={0: 1}),
    )
    print(
        f"worker pool: {survived.n_trials} trials across "
        f"{survived.stats['workers_total']:.0f} workers, "
        f"{survived.stats['worker_attempts']:.0f} attempts "
        f"(one injected crash, retried), "
        f"P̂ = {survived.probability(key):.4f}\n"
    )

    # --- Single-butterfly conditional query --------------------------
    butterfly = make_butterfly(graph, *key)
    estimate = estimate_probability(graph, butterfly, 5_000, rng=1)
    print(
        "conditional query: "
        f"P̂ = {estimate.probability:.4f}, acceptance rate "
        f"{estimate.conditional_probability:.3f}; the Theorem IV.1 "
        f"budget at that rate is only {estimate.trial_bound()} trials"
    )

    # --- Antithetic variance reduction --------------------------------
    plain = ordering_sampling(graph, 4_000, rng=9)
    anti = ordering_sampling(graph, 4_000, rng=9, antithetic=True)
    print(
        f"antithetic sampling: plain P̂ = {plain.probability(key):.4f}, "
        f"antithetic P̂ = {anti.probability(key):.4f} "
        "(both unbiased; antithetic pairs negatively correlate trials)"
    )

    # --- Error bars over independent repetitions ----------------------
    aggregate = repeat_method(
        graph, "os", n_trials=2_000, repetitions=8, rng=5
    )
    low, high = aggregate.interval(key)
    print(
        f"error bars (8 runs x 2000 trials): mean "
        f"{aggregate.means[key]:.4f} ± {aggregate.stds[key]:.4f}, "
        f"95% interval [{low:.4f}, {high:.4f}]"
    )


if __name__ == "__main__":
    main()
