#!/usr/bin/env python3
"""Use case 2 (Figure 3): top-10 MPMBs on TC vs ASD brain networks.

Generates the synthetic ABIDE-like pair (Typical Controls vs Autism
Spectrum Disorder; the ASD network lacks long-range connections), mines
the top-10 MPMBs in each, and reports the clustering of involved ROIs
and the TC/ASD activation-intensity ratio the paper observes (~2x).

Run:
    python examples/brain_network.py
"""

from repro.apps import compare_groups
from repro.datasets import abide_groups


def main() -> None:
    tc, asd = abide_groups(n_rois=28, rng=3)
    print(f"TC network : {tc!r}")
    print(f"ASD network: {asd!r}\n")

    tc_analysis, asd_analysis, ratio = compare_groups(
        tc, asd, k=10, n_trials=4_000, n_prepare=150, rng=5
    )

    for analysis in (tc_analysis, asd_analysis):
        print(f"=== Top-10 MPMBs in {analysis.group} ===")
        for finding in analysis.findings:
            print(
                f"  {finding.rois}  w={finding.weight:6.2f}  "
                f"P={finding.probability:.3f}  "
                f"intensity={finding.intensity:6.3f}"
            )
        clusters = sorted(
            analysis.roi_clusters().items(), key=lambda kv: -kv[1]
        )
        hubs = ", ".join(f"{roi}x{n}" for roi, n in clusters[:5])
        print(f"  most recurrent ROIs: {hubs}")
        print(f"  mean activation intensity: "
              f"{analysis.mean_intensity:.3f}\n")

    print(
        f"TC / ASD intensity ratio: {ratio:.2f} "
        "(the paper reports roughly 2x — TC brains show stronger "
        "long-range activity)"
    )


if __name__ == "__main__":
    main()
