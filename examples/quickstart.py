#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 network, solved exactly and by sampling.

Builds the six-edge uncertain bipartite network from Figure 1(a), prints
every butterfly's exact probability of being the maximum weighted
butterfly (Equation 4), and shows that all four sampling methods agree.

Run:
    python examples/quickstart.py
"""

from repro import (
    GraphBuilder,
    exact_mpmb_by_worlds,
    find_mpmb,
)

# Figure 1(a): two left vertices, three right vertices, six edges.
FIGURE_1_EDGES = [
    ("u1", "v1", 2, 0.5),
    ("u1", "v2", 2, 0.6),
    ("u1", "v3", 1, 0.8),
    ("u2", "v1", 3, 0.3),
    ("u2", "v2", 3, 0.4),
    ("u2", "v3", 1, 0.7),
]


def main() -> None:
    builder = GraphBuilder(name="figure-1")
    for left, right, weight, prob in FIGURE_1_EDGES:
        builder.add_edge(left, right, weight=weight, prob=prob)
    graph = builder.build()
    print(f"Built {graph!r}")

    # Exact ground truth (2^6 = 64 possible worlds — tiny).
    exact = exact_mpmb_by_worlds(graph)
    print("\nExact P(B) for every backbone butterfly:")
    for labels, weight, probability in exact.labelled_ranking():
        print(f"  B{labels}  weight={weight:g}  P(B)={probability:.5f}")
    print(f"  P(no butterfly in the world) = {exact.prob_no_butterfly:.5f}")

    best = exact.best
    assert best is not None
    print(
        f"\nThe MPMB is B{best.labels(graph)} "
        f"(weight {best.weight:g}, P={exact.best_probability:.5f})"
    )

    # Every sampling method recovers it.
    print("\nSampling methods (20 000 trials, seed 7):")
    for method in ("mc-vp", "os", "ols", "ols-kl"):
        result = find_mpmb(graph, method=method, n_trials=20_000, rng=7)
        assert result.best is not None
        print(
            f"  {method:7s} -> B{result.best.labels(graph)} "
            f"P̂={result.best_probability:.4f}"
        )


if __name__ == "__main__":
    main()
