#!/usr/bin/env python3
"""Beyond MPMB: the full uncertain-butterfly analysis surface.

Loads a MovieLens-like network and walks through the companion analyses
the paper's Related Work situates MPMB among:

* distribution-based counting — E[X], Var[X], and a sampled count
  distribution of the butterfly-count random variable;
* threshold-based mining — butterflies whose existence probability
  clears a threshold;
* bitruss decomposition — the butterfly-support core hierarchy,
  deterministic and expected;
* conditional (what-if) MPMB — how one rating's reliability outcome
  swings the most probable maximum butterfly.

Run:
    python examples/uncertainty_analysis.py
"""

from repro import (
    butterfly_count_variance,
    enumerate_probable_butterflies,
    expected_butterfly_count,
    find_mpmb,
)
from repro.core import edge_influence
from repro.counting import sample_butterfly_counts
from repro.datasets import rating_network
from repro.support import bitruss_decomposition, edge_butterfly_support


def main() -> None:
    graph = rating_network(
        25, 80, 300, rng=1, quality_mean_frac=0.5, name="ml-small"
    )
    print(f"Dataset: {graph!r}\n")

    # --- Distribution-based counting -------------------------------
    mean = expected_butterfly_count(graph)
    variance = butterfly_count_variance(graph, max_butterflies=20_000)
    samples = sample_butterfly_counts(graph, 2_000, rng=2)
    print("Butterfly-count random variable X over possible worlds:")
    print(f"  exact   E[X] = {mean:.2f}   Var[X] = {variance:.2f}")
    print(f"  sampled E[X] = {samples.mean():.2f}   "
          f"Var[X] = {samples.var():.2f}   (2 000 worlds)\n")

    # --- Threshold-based mining ------------------------------------
    for threshold in (0.2, 0.4, 0.6):
        count = sum(
            1 for _ in enumerate_probable_butterflies(graph, threshold)
        )
        print(f"  butterflies with Pr[E(B)] >= {threshold:.1f}: {count}")
    print()

    # --- Bitruss decomposition --------------------------------------
    support = edge_butterfly_support(graph)
    truss = bitruss_decomposition(graph)
    expected_truss = bitruss_decomposition(graph, mode="expected")
    print("Butterfly-support structure:")
    print(f"  max edge support          : {support.max()}")
    print(f"  max bitruss number        : {truss.max_truss:.0f}")
    print(f"  edges in the 2-bitruss    : "
          f"{len(truss.k_bitruss_edges(2))}")
    print(f"  max expected bitruss level: "
          f"{expected_truss.max_truss:.3f}\n")

    # --- Conditional MPMB -------------------------------------------
    result = find_mpmb(graph, method="ols", n_trials=3_000, rng=3)
    best = result.best
    assert best is not None
    print(f"MPMB: {best.labels(graph)}  P = {result.best_probability:.3f}")

    # Which of the MPMB's own edges matters most?
    swings = []
    for edge_index in best.edges:
        spec = graph.edge_spec(edge_index)
        _p, _a, swing = edge_influence(
            graph, (spec.left, spec.right), method="ols",
            n_trials=2_000, rng=4,
        )
        swings.append(((spec.left, spec.right), swing))
    swings.sort(key=lambda item: -item[1])
    print("What-if influence of the MPMB's edges "
          "(|P(best|present) - P(best|absent)|):")
    for (left, right), swing in swings:
        print(f"  ({left}, {right}): swing = {swing:.3f}")


if __name__ == "__main__":
    main()
