#!/usr/bin/env python
"""Documentation consistency checker.

Seven guarantees, each enforced by CI through ``tests/test_docs.py``:

1. **Coverage** — ``README.md`` references every page under ``docs/``
   (a page nobody links is a page nobody reads).
2. **Link integrity** — every relative Markdown link in ``README.md``,
   ``DESIGN.md``, and ``docs/*.md`` resolves to a file inside the
   repository (anchors are stripped; external URLs are ignored).
3. **CLI flag sync** — every ``--flag`` shown in a fenced code block's
   ``python -m repro ...`` command exists in the actual argument parser
   (and likewise for ``python benchmarks/run_bench.py``), so documented
   invocations cannot rot silently.
4. **Kernel docs sync** — ``docs/kernels.md`` exists, is indexed from
   README.md, and names every ``kernel.*`` / ``worker.shm.*`` metric of
   the observability catalog, so the performance-model page cannot
   silently fall behind the instrumented kernel layer.
5. **Protocol docs sync** — ``docs/static-analysis.md`` catalogs every
   registered analyzer rule, keeps its *Protocol verification* section,
   and names every registered typestate protocol spec, so the rule
   table cannot fall behind the live registry.
6. **Rule catalog sync** — every rule-table row in
   ``docs/static-analysis.md`` carries the id and severity the live
   registry (and therefore ``python -m repro.analysis --list-rules``)
   reports, and documents no unregistered rule (``PARSE001``, the
   runner-emitted pseudo-rule, excepted), plus the *Concurrency
   verification* section for the lock-discipline rules stays pinned.
7. **Adaptive docs sync** — ``docs/performance.md`` and
   ``docs/runtime.md`` both name every ``adaptive.*`` metric of the
   observability catalog, so the anytime-mode pages cannot fall behind
   the instrumented racing/pre-screen layer.

Run directly::

    python tools/check_docs.py            # exit 0 = all good

The script has no dependencies beyond the repository itself; it inserts
``src/`` on ``sys.path`` to import the parsers.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown link: [text](target) — target captured without closing paren.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Long-option token inside a documented command line.
FLAG_PATTERN = re.compile(r"(?<![-\w])--[A-Za-z][A-Za-z0-9-]*")

#: Schemes that mark a link as external (never checked on disk).
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _rel(path: Path) -> str:
    """``path`` relative to the repo root when possible (for messages)."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def doc_files() -> List[Path]:
    """The Markdown files whose links are checked."""
    files = [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_readme_covers_docs() -> List[str]:
    """Every ``docs/*.md`` page must be referenced from README.md."""
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    problems = []
    for page in sorted((REPO_ROOT / "docs").glob("*.md")):
        reference = f"docs/{page.name}"
        if reference not in readme:
            problems.append(
                f"README.md does not reference {reference}"
            )
    return problems


def iter_links(path: Path) -> Iterable[str]:
    """All Markdown link targets in ``path``."""
    for match in LINK_PATTERN.finditer(path.read_text(encoding="utf-8")):
        yield match.group(1)


def check_links() -> List[str]:
    """Every relative link must resolve inside the repository."""
    problems = []
    for path in doc_files():
        for target in iter_links(path):
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            # Strip a trailing anchor; a bare anchor targets this file.
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
                problems.append(
                    f"{_rel(path)}: link {target!r} "
                    f"escapes the repository"
                )
            elif not resolved.exists():
                problems.append(
                    f"{_rel(path)}: broken link "
                    f"{target!r}"
                )
    return problems


def fenced_command_lines(path: Path) -> List[str]:
    """Logical command lines inside fenced code blocks.

    Backslash continuations are joined so a wrapped command counts as
    one line.
    """
    lines: List[str] = []
    in_fence = False
    pending = ""
    for raw in path.read_text(encoding="utf-8").splitlines():
        stripped = raw.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            pending = ""
            continue
        if not in_fence:
            continue
        if pending:
            stripped = f"{pending} {stripped}"
            pending = ""
        if stripped.endswith("\\"):
            pending = stripped[:-1].strip()
            continue
        lines.append(stripped)
    return lines


def parser_flags(parser) -> Set[str]:
    """All long options of ``parser``, recursing into subparsers."""
    import argparse

    flags: Set[str] = set()
    for action in parser._actions:
        flags.update(
            opt for opt in action.option_strings if opt.startswith("--")
        )
        if isinstance(action, argparse._SubParsersAction):
            for sub in action.choices.values():
                flags.update(parser_flags(sub))
    return flags


def known_flags() -> Tuple[Set[str], Set[str], Set[str]]:
    """(repro CLI, run_bench, repro.analysis) flags from the parsers."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from repro.__main__ import build_parser as build_cli_parser
        from repro.analysis.__main__ import (
            build_parser as build_lint_parser,
        )
        from run_bench import build_parser as build_bench_parser
    finally:
        sys.path.pop(0)
        sys.path.pop(0)
    return (
        parser_flags(build_cli_parser()),
        parser_flags(build_bench_parser()),
        parser_flags(build_lint_parser()),
    )


def check_cli_flags() -> List[str]:
    """Documented ``--flags`` must exist in the matching parser."""
    cli_flags, bench_flags, lint_flags = known_flags()
    problems = []
    for path in doc_files():
        for line in fenced_command_lines(path):
            if "python -m repro.experiments" in line:
                continue  # separate CLI, documented elsewhere
            if (
                "python -m repro.analysis" in line
                or "tools/lint.py" in line
            ):
                expected, label = lint_flags, "python -m repro.analysis"
            elif "python -m repro" in line:
                expected, label = cli_flags, "python -m repro"
            elif "benchmarks/run_bench.py" in line:
                expected, label = bench_flags, "run_bench.py"
            else:
                continue
            for flag in FLAG_PATTERN.findall(line):
                if flag not in expected:
                    problems.append(
                        f"{_rel(path)}: {label} has no "
                        f"{flag} (documented: {line!r})"
                    )
    return problems


def check_kernel_docs() -> List[str]:
    """``docs/kernels.md`` must exist and name every kernel-layer metric.

    The kernel layer is documented in one place; this check keeps that
    page in the README index and in sync with the ``kernel.*`` and
    ``worker.shm.*`` families of the observability catalog — a new
    kernel instrument without a matching mention here is a doc rot bug.
    """
    page = REPO_ROOT / "docs" / "kernels.md"
    if not page.exists():
        return ["docs/kernels.md is missing (the kernel layer's page)"]
    problems = []
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    if "docs/kernels.md" not in readme:
        problems.append("README.md does not index docs/kernels.md")
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.observability.catalog import METRICS
    finally:
        sys.path.pop(0)
    text = page.read_text(encoding="utf-8")
    for spec in METRICS:
        if not spec.name.startswith(("kernel.", "worker.shm.")):
            continue
        if spec.name not in text:
            problems.append(
                f"docs/kernels.md does not mention the cataloged "
                f"kernel-layer metric {spec.name!r}"
            )
    return problems


def check_protocol_docs() -> List[str]:
    """``docs/static-analysis.md`` must cover every registered rule.

    The rule catalog is documented in one place; this check keeps the
    table in sync with the live rule registry (a new rule without a
    catalog row is invisible to anyone triaging its findings) and pins
    the *Protocol verification* section that explains the typestate
    rules' specs and traces.
    """
    page = REPO_ROOT / "docs" / "static-analysis.md"
    if not page.exists():
        return [
            "docs/static-analysis.md is missing (the analyzer's page)"
        ]
    problems = []
    text = page.read_text(encoding="utf-8")
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.analysis import RULES
        from repro.analysis.program.typestate import PROTOCOLS
    finally:
        sys.path.pop(0)
    for rule_id in RULES:
        if f"`{rule_id}`" not in text:
            problems.append(
                f"docs/static-analysis.md has no rule-catalog row "
                f"for registered rule {rule_id!r}"
            )
    if "## Protocol verification" not in text:
        problems.append(
            "docs/static-analysis.md is missing the "
            "'Protocol verification' section for the typestate rules"
        )
    for spec in PROTOCOLS.values():
        if f"`{spec.name}`" not in text:
            problems.append(
                f"docs/static-analysis.md does not name the "
                f"registered protocol spec {spec.name!r}"
            )
    return problems


def check_adaptive_docs() -> List[str]:
    """Both anytime-mode pages must name every ``adaptive.*`` metric.

    Adaptive mode is documented twice on purpose — the *why/how fast*
    story in ``docs/performance.md`` and the *certified-stop semantics*
    in ``docs/runtime.md`` — and both narratives hinge on the same
    realised-budget instruments, so each page must mention every
    ``adaptive.*`` family of the observability catalog.
    """
    problems = []
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.observability.catalog import METRICS
    finally:
        sys.path.pop(0)
    for name in ("performance.md", "runtime.md"):
        page = REPO_ROOT / "docs" / name
        if not page.exists():
            problems.append(f"docs/{name} is missing (anytime-mode page)")
            continue
        text = page.read_text(encoding="utf-8")
        for spec in METRICS:
            if not spec.name.startswith("adaptive."):
                continue
            if spec.name not in text:
                problems.append(
                    f"docs/{name} does not mention the cataloged "
                    f"adaptive metric {spec.name!r}"
                )
    return problems


#: A rule-catalog table row: | `ID` | severity | ...
RULE_ROW_PATTERN = re.compile(
    r"^\|\s*`([A-Z]+\d+[A-Z]*)`\s*\|\s*(\w+)\s*\|"
)


def check_rule_catalog() -> List[str]:
    """The docs rule table must match ``--list-rules`` exactly.

    Each registered rule appears as a table row whose severity column
    is what the registry declares, and no row documents a rule that
    is not registered (``PARSE001`` aside — the runner emits it
    directly), so the table and the CLI's ``--list-rules`` output can
    never disagree.  Also pins the *Concurrency verification* section
    explaining the lock-discipline rules' model and traces.
    """
    page = REPO_ROOT / "docs" / "static-analysis.md"
    if not page.exists():
        return []  # check_protocol_docs already reports the page
    problems = []
    text = page.read_text(encoding="utf-8")
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.analysis import RULES
    finally:
        sys.path.pop(0)
    rows = {}
    for line in text.splitlines():
        match = RULE_ROW_PATTERN.match(line)
        if match:
            rows[match.group(1)] = match.group(2)
    for rule_id, rule_class in sorted(RULES.items()):
        severity = rows.get(rule_id)
        if severity is None:
            problems.append(
                f"docs/static-analysis.md rule table has no row "
                f"for registered rule {rule_id!r}"
            )
        elif severity != rule_class.severity:
            problems.append(
                f"docs/static-analysis.md documents {rule_id} with "
                f"severity {severity!r} but --list-rules reports "
                f"{rule_class.severity!r}"
            )
    for rule_id in sorted(rows):
        if rule_id not in RULES and rule_id != "PARSE001":
            problems.append(
                f"docs/static-analysis.md rule table documents "
                f"{rule_id!r}, which is not a registered rule"
            )
    if "## Concurrency verification" not in text:
        problems.append(
            "docs/static-analysis.md is missing the "
            "'Concurrency verification' section for the "
            "lock-discipline rules"
        )
    return problems


def run_checks() -> List[str]:
    """All problems found across every check (empty = docs are sound)."""
    problems: List[str] = []
    problems.extend(check_readme_covers_docs())
    problems.extend(check_links())
    problems.extend(check_cli_flags())
    problems.extend(check_kernel_docs())
    problems.extend(check_protocol_docs())
    problems.extend(check_rule_catalog())
    problems.extend(check_adaptive_docs())
    return problems


def main() -> int:
    problems = run_checks()
    for problem in problems:
        print(f"check_docs: {problem}", file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    checked = len(doc_files())
    print(f"check_docs: OK ({checked} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
