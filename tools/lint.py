#!/usr/bin/env python
"""Run the repro static analyzer without needing PYTHONPATH=src.

Equivalent to ``PYTHONPATH=src python -m repro.analysis``; see
``docs/static-analysis.md`` for the rule catalog and workflow.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis.__main__ import main

    raise SystemExit(main())
