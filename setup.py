"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on offline environments whose setuptools lacks
the ``wheel`` package required by PEP 660 editable installs (pip then
falls back to the legacy ``setup.py develop`` path via
``--no-use-pep517``).
"""

from setuptools import setup

setup()
