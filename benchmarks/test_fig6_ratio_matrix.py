"""Figure 6 — the N_kl/N_op trial-ratio matrix over (P(B), Pr[E(B)])."""

import numpy as np

from repro.core.bounds import karp_luby_trial_ratio, ratio_matrix
from repro.experiments import run_experiment

from .conftest import BENCH_CONFIG


def test_matrix_generation_speed(benchmark):
    mus = [0.01 * i for i in range(1, 50)]
    existence = [0.02 * i for i in range(1, 50)]
    matrix = benchmark(ratio_matrix, mus, existence, 1.0)
    assert matrix.shape == (49, 49)


def test_fig6_report(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("fig6", BENCH_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    matrix = outcome.data["matrix"]
    mus = outcome.data["mus"]
    existence = outcome.data["existence"]

    # Paper shape 1: darker (larger) towards small P(B) — column-wise the
    # ratio decreases as mu grows.
    for j in range(len(existence)):
        column = [
            matrix[i][j] for i in range(len(mus))
            if not np.isnan(matrix[i][j])
        ]
        assert column == sorted(column, reverse=True)

    # Paper shape 2: larger towards high existence probability — row-wise
    # increasing in Pr[E(B)].
    for i in range(len(mus)):
        row = [value for value in matrix[i] if not np.isnan(value)]
        assert row == sorted(row)

    # Paper's qualitative claim: for precise targets (small mu) and
    # likely butterflies the ratio far exceeds typical 1/|C_MB| values.
    assert karp_luby_trial_ratio(0.9, 1.0, 0.01) > 50
    # The infeasible triangle is blanked.
    assert np.isnan(matrix[len(mus) - 1][0])
