"""Table III — dataset details.

Benchmarks dataset generation and regenerates the statistics table,
checking each stand-in keeps the paper row's structural character
(bipartition shape ordering, weight/probability semantics).
"""

import pytest

from repro.datasets import PAPER_SHAPES, load_dataset
from repro.experiments import run_experiment
from repro.graph import compute_stats

from .conftest import BENCH_CONFIG


@pytest.mark.parametrize("name", BENCH_CONFIG.datasets)
def test_dataset_generation_speed(benchmark, name):
    """How long generating each bench dataset takes."""
    graph = benchmark(lambda: load_dataset(name, "bench", rng=0))
    assert graph.n_edges > 0


def test_table3_report(bench_datasets, capsys):
    outcome = run_experiment("table3", BENCH_CONFIG)
    with capsys.disabled():
        print()
        print(outcome.text)

    stats = outcome.data["stats"]
    for name, graph in bench_datasets.items():
        generated = compute_stats(graph)
        paper_e, paper_l, paper_r, _w, _p = PAPER_SHAPES[name]
        # Side-balance character preserved: which partition is larger.
        if paper_l < paper_r:
            assert generated.n_left < generated.n_right, name
        elif paper_l == paper_r:
            assert generated.n_left == generated.n_right, name
        # Edges dominate vertices on every dataset, as in the paper.
        assert generated.n_edges > max(
            generated.n_left, generated.n_right
        ), name
        assert stats[name].n_edges == generated.n_edges


def test_probability_semantics(bench_datasets):
    """Protein uses the paper's Normal(0.5, 0.2) preprocessing; rating
    networks use conformity reliabilities bounded away from 0/1."""
    protein = bench_datasets["protein"]
    assert protein.probs.mean() == pytest.approx(0.5, abs=0.05)
    for name in ("movielens", "jester"):
        probs = bench_datasets[name].probs
        assert probs.min() >= 0.05
        assert probs.max() <= 0.9
