"""Table IV — trial numbers of the four methods in both phases."""

from repro.core.bounds import (
    candidate_hit_probability,
    karp_luby_trial_bound,
    monte_carlo_trial_bound,
)
from repro.experiments import run_experiment

from .conftest import BENCH_CONFIG


def test_theorem41_bound_speed(benchmark):
    n = benchmark(monte_carlo_trial_bound, 0.05, 0.1, 0.1)
    # The paper rounds this to its 20 000 default.
    assert 20_000 <= n <= 24_000


def test_dynamic_kl_bound_speed(benchmark):
    n = benchmark(karp_luby_trial_bound, 0.5, 1.5, 0.05, 0.1, 0.1)
    assert n >= 1


def test_table4_report(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("table4", BENCH_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    # The paper's parameter story (Section VIII-B):
    # (1) direct methods need ~2e4 trials at mu=0.05, eps=delta=0.1;
    assert 20_000 <= outcome.data["bound"] <= 24_000
    # (2) 100 preparing trials make a P(B)=0.05 butterfly's miss
    #     probability well under 1%.
    assert outcome.data["miss_probability"] < 0.01
    # Cross-check with Lemma VI.1 directly.
    assert candidate_hit_probability(0.05, 100) > 0.99
