"""Figure 7 — overall executing time of MC-VP, OS, OLS-KL and OLS.

The paper's headline numbers: OS is ≥1000x faster than MC-VP (pruning
optimisations), and OLS adds up to another 180x (100 preparing trials
replace 20 000 full-network trials).  We benchmark single trials of each
method per dataset and assert the ordering of the extrapolated totals.
"""

import pytest

from repro.core import mc_vp, ordering_sampling
from repro.experiments import run_experiment

from .conftest import BENCH_CONFIG


@pytest.mark.parametrize("name", BENCH_CONFIG.datasets)
def test_os_trial(benchmark, bench_datasets, name):
    """One OS Monte-Carlo trial (the unit the 20 000x budget scales)."""
    graph = bench_datasets[name]
    benchmark.pedantic(
        lambda: ordering_sampling(graph, 20, rng=1),
        rounds=3, iterations=1,
    )


@pytest.mark.parametrize("name", BENCH_CONFIG.datasets)
def test_mcvp_trial(benchmark, bench_datasets, name):
    """One MC-VP trial — the baseline's enumerate-everything cost."""
    graph = bench_datasets[name]
    benchmark.pedantic(
        lambda: mc_vp(graph, 1, rng=1),
        rounds=3, iterations=1,
    )


def test_fig7_report_and_shape(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("fig7", BENCH_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    kl_beats_os = 0
    for name, times in outcome.data.items():
        # Shape 1: OS crushes MC-VP on every dataset.  The paper reports
        # >=1000x; our Python miniatures show 50x-3000x depending on the
        # dataset's butterfly density (see EXPERIMENTS.md).
        assert times["mc-vp"] > 10 * times["os"], (
            f"{name}: MC-VP should be >10x slower than OS"
        )
        # Shape 2: OLS beats OS (its preparing phase is 200x smaller).
        assert times["ols"] < times["os"], name
        # Shape 3: OLS-KL always beats the baseline...
        assert times["ols-kl"] < times["mc-vp"], name
        if times["ols-kl"] < times["os"]:
            kl_beats_os += 1
    # ...and beats OS on most datasets.  (On miniatures whose OS trials
    # are very cheap, the Lemma VI.4 dynamic KL budget can overshoot a
    # single dataset — exactly the Equation 8 cost the paper plots in
    # Figure 6; see EXPERIMENTS.md.)
    assert kl_beats_os >= len(outcome.data) - 1


def test_fig7_speedup_magnitudes(capsys):
    """The dense rating datasets reproduce the paper's ~1000x MC-VP gap."""
    outcome = run_experiment("fig7", BENCH_CONFIG)
    dense = [
        outcome.data[name]["mc-vp"] / outcome.data[name]["os"]
        for name in ("movielens", "jester")
    ]
    assert max(dense) > 500
