"""Figure 12 — preparing-phase trial sufficiency (Lemma VI.1).

Independent OLS runs at growing preparing budgets: early runs may miss
the tracked butterfly entirely (estimate 0) or overestimate over a tiny
candidate set; after about half the doubled budget the estimates settle.
"""

import pytest

from repro.core import prepare_candidates
from repro.core.bounds import candidate_hit_probability
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.figures_convergence import (
    candidate_recall_curve,
    pick_tracked_butterfly,
)

FIG12_CONFIG = ExperimentConfig(
    profile="bench",
    seed=0,
    n_prepare=100,
    n_sampling=2_000,
    datasets=("abide",),
)


def test_preparing_budget_speed(benchmark, bench_datasets):
    graph = bench_datasets["abide"]
    candidates = benchmark.pedantic(
        lambda: prepare_candidates(graph, 100, rng=3),
        rounds=2, iterations=1,
    )
    assert len(candidates) > 0


def test_fig12_report_and_shape(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("fig12", FIG12_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    payload = outcome.data["abide"]
    estimates = payload["estimates"]
    reference = payload["reference"]
    assert reference > 0.0
    # Paper shape: the second half of the budget sweep is stable around
    # the final value (each run independent -> fluctuation, not strict
    # convergence).
    tail = estimates[len(estimates) // 2:]
    for value in tail:
        assert value == pytest.approx(reference, rel=0.6), (
            estimates,
        )


def test_empirical_recall_matches_lemma_vi1(bench_datasets):
    """The capture rate of the tracked butterfly tracks
    1-(1-P(B))^N within sampling noise."""
    graph = bench_datasets["abide"]
    key = pick_tracked_butterfly(graph, FIG12_CONFIG)
    assert key is not None
    # Rough probability from a pilot run.
    from repro.core import ordering_listing_sampling

    pilot = ordering_listing_sampling(
        graph, 2_000, n_prepare=150, rng=9, track=[key]
    )
    probability = pilot.probability(key)
    assert probability > 0.0

    budgets = [20, 60, 120]
    recalls = candidate_recall_curve(
        graph, FIG12_CONFIG, key, budgets, repeats=15
    )
    # Recall is non-decreasing in the budget (allowing one noise notch).
    assert recalls[-1] >= recalls[0]
    # And in the right ballpark of the Lemma VI.1 prediction.
    for budget, recall in zip(budgets, recalls):
        predicted = candidate_hit_probability(probability, budget)
        assert abs(recall - predicted) < 0.45, (
            budget, recall, predicted,
        )
