#!/usr/bin/env python
"""Benchmark the static analyzer and write ``BENCH_analysis.json``.

Times five configurations of the whole-program analyzer over the
repository itself: a cold run (no summary cache), a warm run (summaries
served from ``.repro-analysis-cache.json``), a warm run with the
typestate/protocol rules ignored (the pre-typestate rule set), a warm
run with the concurrency rules ignored (the pre-concurrency rule set),
and a diff-aware run against a git base.  All full configurations
exercise the typestate rules (SHM001, RES001, CLK002, DTY001, SHP001)
and the concurrency rules (LCK001, LCK002, LCK003, ATM001) because
they are registered like any other rule.  Three headline ratios are
recorded: ``diff_vs_cold_ratio`` (the docs promise ``--diff`` under
20% of a full cold run), ``typestate_warm_overhead_ratio`` (warm run
with the typestate rules over warm run without them), and
``concurrency_warm_overhead_ratio`` (warm run with the concurrency
rules over warm run without them).  Both overhead ratios must stay
under 2x — the benchmark exits non-zero when either does not, so
neither verification layer can silently double lint latency.

The output schema matches ``run_bench.py`` (versioned ``format`` +
``kind`` discriminators, sorted keys) so the same tooling can diff
both documents.

Usage::

    PYTHONPATH=src python benchmarks/bench_analysis.py
    PYTHONPATH=src python benchmarks/bench_analysis.py \
        --repeat 5 --base HEAD~1 --out BENCH_analysis.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis import AnalysisConfig, discover_root, run_analysis
from repro.analysis.diff import DiffError, changed_lines

#: Version of the benchmark document layout.
BENCH_FORMAT = 1

#: Discriminator so arbitrary JSON files are rejected early.
BENCH_KIND = "repro-bench"

#: The typestate/protocol rules whose warm overhead is gated.
TYPESTATE_RULES = ("SHM001", "RES001", "CLK002", "DTY001", "SHP001")

#: Warm runs including the typestate rules must stay under this
#: multiple of the warm run without them.
TYPESTATE_OVERHEAD_LIMIT = 2.0

#: The concurrency rules whose warm overhead is gated.
CONCURRENCY_RULES = ("LCK001", "LCK002", "LCK003", "ATM001")

#: Warm runs including the concurrency rules must stay under this
#: multiple of the warm run without them.
CONCURRENCY_OVERHEAD_LIMIT = 2.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the static analyzer; write BENCH_analysis.json."
        )
    )
    parser.add_argument(
        "--out", default="BENCH_analysis.json", metavar="PATH",
        help="output JSON path (default: BENCH_analysis.json)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="timed repetitions per configuration; the minimum wins "
             "(default: 3)",
    )
    parser.add_argument(
        "--base", default="HEAD~1", metavar="REV",
        help="git base for the diff-aware configuration "
             "(default: HEAD~1)",
    )
    parser.add_argument(
        "--root", type=Path, default=None, metavar="PATH",
        help="repository root (default: discovered from CWD)",
    )
    return parser


def _time(config: AnalysisConfig, repeat: int) -> Dict:
    """Best-of-``repeat`` wall time for one analyzer configuration."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = run_analysis(config)
        best = min(best, time.perf_counter() - start)
    assert result is not None
    return {
        "wall_seconds": best,
        "files_analyzed": result.files_analyzed,
        "files_parsed": result.files_parsed,
        "findings": len(result.findings),
    }


def run_suite(args: argparse.Namespace) -> Dict:
    """The full benchmark document for ``args``."""
    root = (args.root or discover_root()).resolve()
    entries: List[Dict] = []

    with tempfile.TemporaryDirectory() as scratch:
        cache_path = Path(scratch) / "bench-cache.json"

        print("benchmarking cold full run ...", file=sys.stderr)
        cold = _time(
            AnalysisConfig(root=root, use_cache=False), args.repeat
        )
        entries.append({"configuration": "full-cold", **cold})

        # Populate the scratch cache once, then time warm runs that
        # reuse it.  A scratch path keeps the benchmark from clobbering
        # the developer's real cache.
        run_analysis(AnalysisConfig(
            root=root, use_cache=True, cache_path=cache_path,
        ))
        print("benchmarking warm full run ...", file=sys.stderr)
        warm = _time(
            AnalysisConfig(
                root=root, use_cache=True, cache_path=cache_path,
            ),
            args.repeat,
        )
        entries.append({"configuration": "full-warm", **warm})

        print("benchmarking warm run without typestate rules ...",
              file=sys.stderr)
        warm_base = _time(
            AnalysisConfig(
                root=root, use_cache=True, cache_path=cache_path,
                ignore=list(TYPESTATE_RULES),
            ),
            args.repeat,
        )
        entries.append({
            "configuration": "full-warm-no-typestate", **warm_base,
        })

        print("benchmarking warm run without concurrency rules ...",
              file=sys.stderr)
        warm_no_conc = _time(
            AnalysisConfig(
                root=root, use_cache=True, cache_path=cache_path,
                ignore=list(CONCURRENCY_RULES),
            ),
            args.repeat,
        )
        entries.append({
            "configuration": "full-warm-no-concurrency", **warm_no_conc,
        })

        diff_entry: Optional[Dict] = None
        try:
            changed = changed_lines(root, args.base)
        except DiffError as error:
            print(f"skipping diff configuration: {error}",
                  file=sys.stderr)
        else:
            print(f"benchmarking --diff {args.base} "
                  f"({len(changed)} changed file(s)) ...",
                  file=sys.stderr)
            diff_entry = _time(
                AnalysisConfig(
                    root=root,
                    changed=changed,
                    use_cache=True,
                    cache_path=cache_path,
                ),
                args.repeat,
            )
            diff_entry["configuration"] = f"diff-{args.base}"
            diff_entry["changed_files"] = len(changed)
            entries.append(diff_entry)

    document = {
        "format": BENCH_FORMAT,
        "kind": BENCH_KIND,
        "suite": "analysis",
        "config": {
            "repeat": args.repeat,
            "base": args.base,
            "root": str(root),
        },
        "entries": entries,
    }
    if diff_entry is not None and cold["wall_seconds"] > 0:
        document["diff_vs_cold_ratio"] = (
            diff_entry["wall_seconds"] / cold["wall_seconds"]
        )
    if warm_base["wall_seconds"] > 0:
        document["typestate_warm_overhead_ratio"] = (
            warm["wall_seconds"] / warm_base["wall_seconds"]
        )
    if warm_no_conc["wall_seconds"] > 0:
        document["concurrency_warm_overhead_ratio"] = (
            warm["wall_seconds"] / warm_no_conc["wall_seconds"]
        )
    return document


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    document = run_suite(args)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    ratio = document.get("diff_vs_cold_ratio")
    summary = f"wrote {len(document['entries'])} entries to {args.out}"
    if ratio is not None:
        summary += f" (diff/cold ratio: {ratio:.2f})"
    overhead = document.get("typestate_warm_overhead_ratio")
    if overhead is not None:
        summary += f" (typestate warm overhead: {overhead:.2f}x)"
    conc_overhead = document.get("concurrency_warm_overhead_ratio")
    if conc_overhead is not None:
        summary += f" (concurrency warm overhead: {conc_overhead:.2f}x)"
    print(summary, file=sys.stderr)
    status = 0
    if overhead is not None and overhead >= TYPESTATE_OVERHEAD_LIMIT:
        print(
            f"bench_analysis: typestate warm overhead {overhead:.2f}x "
            f"breaches the {TYPESTATE_OVERHEAD_LIMIT:.0f}x budget",
            file=sys.stderr,
        )
        status = 1
    if (
        conc_overhead is not None
        and conc_overhead >= CONCURRENCY_OVERHEAD_LIMIT
    ):
        print(
            f"bench_analysis: concurrency warm overhead "
            f"{conc_overhead:.2f}x breaches the "
            f"{CONCURRENCY_OVERHEAD_LIMIT:.0f}x budget",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
