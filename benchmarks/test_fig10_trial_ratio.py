"""Figure 10 — per-candidate N_kl/N_op ratios vs the 1/|C_MB| line."""

import pytest

from repro.core import prepare_candidates
from repro.core.bounds import balance_ratio, candidate_trial_ratios
from repro.experiments import run_experiment

from .conftest import BENCH_CONFIG


@pytest.mark.parametrize("name", BENCH_CONFIG.datasets)
def test_ratio_computation_speed(benchmark, bench_datasets, name):
    graph = bench_datasets[name]
    candidates = prepare_candidates(graph, 60, rng=11)
    if len(candidates) == 0:
        pytest.skip("no candidates on this dataset/seed")
    ratios = benchmark(candidate_trial_ratios, candidates, 0.1)
    assert len(ratios) == len(candidates)


def test_fig10_report_and_shape(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("fig10", BENCH_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    assert outcome.data, "expected per-dataset ratio payloads"
    for name, payload in outcome.data.items():
        ratios = payload["ratios"]
        reference = payload["reference"]
        assert reference == pytest.approx(balance_ratio(len(ratios)))
        # Paper shape: "most bars significantly exceed this balanced
        # value" — the optimised estimator wins for the bulk of
        # candidates.
        assert payload["fraction_above"] > 0.5, (
            f"{name}: only {payload['fraction_above']:.0%} of candidates "
            "favour the optimised estimator"
        )


def test_jester_equal_weight_plateaus(bench_datasets):
    """Figure 10(c)'s observation: jester's identical ratings create
    many butterflies with the same weight, hence repeated ratios."""
    graph = bench_datasets["jester"]
    candidates = prepare_candidates(graph, 100, rng=11)
    classes = candidates.weight_classes()
    largest = max(len(cls) for cls in classes)
    assert largest >= 5, "expected tied weight classes on jester"
