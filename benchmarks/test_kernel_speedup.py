"""Batched kernel speedup — the acceptance bar for ``repro.kernels``.

The batched optimised estimator replaces a per-trial Python walk over
the candidate list with one incidence-matrix gather per block, so its
sampling phase must be at least **5x** faster than the scalar loop on
the ``abide`` bench config — and, because the blocked path draws full
masks (partition-invariant RNG consumption), a seed-fixed run must be
*identical* across block sizes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import prepare_candidates
from repro.core.optimized_estimator import estimate_probabilities_optimized
from repro.datasets import load_dataset

#: Sampling-phase trials; large enough that per-call overhead amortises.
N_TRIALS = 20_000

#: Required batched-over-scalar trials/sec ratio (measured ~10x).
MIN_SPEEDUP = 5.0


def _abide_candidates():
    graph = load_dataset("abide", "bench", rng=0)
    return prepare_candidates(graph, 50, rng=123)


def _trials_per_second(candidates, **kwargs) -> float:
    start = time.perf_counter()
    estimate_probabilities_optimized(
        candidates, N_TRIALS, np.random.default_rng(7), **kwargs
    )
    return N_TRIALS / (time.perf_counter() - start)


def test_batched_ols_is_5x_scalar():
    candidates = _abide_candidates()
    scalar = _trials_per_second(candidates)
    batched = _trials_per_second(candidates, block_size=256)
    assert batched >= MIN_SPEEDUP * scalar, (
        f"batched OLS {batched:.0f} trials/s is under "
        f"{MIN_SPEEDUP}x the scalar {scalar:.0f} trials/s"
    )


def test_seed_fixed_equivalence_across_block_sizes():
    """The speedup must not change the answer: one seed, any block
    partition, identical estimates and stats."""
    candidates = _abide_candidates()
    outcomes = [
        estimate_probabilities_optimized(
            candidates, 2_000, np.random.default_rng(7),
            block_size=block_size,
        )
        for block_size in (64, 256, 2_000)
    ]
    for outcome in outcomes[1:]:
        assert outcome.estimates == outcomes[0].estimates
        assert outcome.stats == outcomes[0].stats
