"""Figure 11 — sampling-phase convergence of P(B) at twice the budget.

The paper tracks a butterfly with P(B) ≈ 0.05 through OS, OLS and OLS-KL
and shows all three stabilise inside a 2ε band before the theoretical
trial number is exhausted.
"""

import pytest

from repro.core import ordering_listing_sampling
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.figures_convergence import pick_tracked_butterfly

FIG11_CONFIG = ExperimentConfig(
    profile="bench",
    seed=0,
    n_prepare=100,
    n_sampling=3_000,
    datasets=("abide",),
)


def test_tracked_estimation_speed(benchmark, bench_datasets):
    graph = bench_datasets["abide"]
    key = pick_tracked_butterfly(graph, FIG11_CONFIG)
    assert key is not None
    result = benchmark.pedantic(
        lambda: ordering_listing_sampling(
            graph, 1_000, n_prepare=60, rng=5, track=[key]
        ),
        rounds=2, iterations=1,
    )
    assert key in result.traces


def test_fig11_report_and_shape(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("fig11", FIG11_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    payload = outcome.data["abide"]
    reference = payload["reference"]
    assert reference > 0.0

    # All three methods' final estimates agree within the band.
    finals = {
        method: trace.final_estimate
        for method, trace in payload["traces"].items()
        if trace is not None and trace.checkpoints
    }
    assert set(finals) == {"os", "ols", "ols-kl"}
    for method, final in finals.items():
        assert final == pytest.approx(reference, rel=0.35), (
            f"{method} final {final} vs OS reference {reference}"
        )

    # The OS trace (the fully-guaranteed method) settles inside the band
    # after the warm-up half, as in the paper's plots.
    os_trace = payload["traces"]["os"]
    assert os_trace.within_band(reference, 0.25, after_fraction=0.5)
