"""Figure 13 — memory consumption of the four methods.

The paper observes that OS/OLS/OLS-KL stay close to the network's own
footprint (their indexes are tiny) while MC-VP needs substantially more
to hold every angle and butterfly.
"""

import pytest

from repro.core import mc_vp, ordering_sampling
from repro.experiments import peak_memory, run_experiment

from .conftest import BENCH_CONFIG


def test_fig13_report_and_shape(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("fig13", BENCH_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    for name, peaks in outcome.data.items():
        assert set(peaks) == {"mc-vp", "os", "ols-kl", "ols"}
        assert all(peak > 0 for peak in peaks.values()), name

    # The butterfly-dense rating networks show MC-VP's blow-up clearly.
    for name in ("movielens", "jester"):
        peaks = outcome.data[name]
        assert peaks["mc-vp"] > 2 * peaks["os"], (
            f"{name}: MC-VP should need far more memory than OS"
        )


@pytest.mark.parametrize("name", ["movielens", "jester"])
def test_mcvp_stores_everything(bench_datasets, name):
    """Mechanism check: MC-VP's stored-angle/butterfly counters dwarf
    the OS top-2 index on dense data."""
    graph = bench_datasets[name]
    baseline = mc_vp(graph, 2, rng=1)
    optimised = ordering_sampling(graph, 2, rng=1)
    assert (
        baseline.stats["butterflies_checked"]
        > 50 * optimised.stats["angles_stored"]
    )


def test_memory_measurement_benchmark(benchmark, bench_datasets):
    """Cost of taking one instrumented memory measurement."""
    graph = bench_datasets["abide"]
    _result, peak = benchmark.pedantic(
        lambda: peak_memory(lambda: ordering_sampling(graph, 10, rng=0)),
        rounds=2, iterations=1,
    )
    assert peak > 0
