"""Ablation benchmarks for the design decisions DESIGN.md calls out.

Not paper figures — these quantify each Section V/VI optimisation in
isolation: the edge-ordering prune, the A1/A2 angle index versus
store-everything, and the shared-trial estimator versus per-candidate
Karp-Luby at equal trial counts.
"""

import pytest

from repro.core import (
    estimate_probabilities_karp_luby,
    estimate_probabilities_optimized,
    ordering_sampling,
    prepare_candidates,
)
from repro.experiments import run_experiment

from .conftest import BENCH_CONFIG, SWEEP_CONFIG


def test_prune_ablation_report(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("ablation-prune", SWEEP_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    for name, payload in outcome.data.items():
        # The prune only ever removes work...
        assert payload["edges_prune"] <= payload["edges_noprune"], name
        # ...and removes a lot of it on every bench dataset.
        assert payload["edges_prune"] < 0.5 * payload["edges_noprune"], name


@pytest.mark.parametrize("prune", [True, False])
def test_os_prune_onoff(benchmark, bench_datasets, prune):
    graph = bench_datasets["movielens"]
    benchmark.pedantic(
        lambda: ordering_sampling(graph, 30, rng=1, prune=prune),
        rounds=2, iterations=1,
    )


@pytest.mark.parametrize("estimator", ["optimized", "karp-luby"])
def test_estimator_cost_at_equal_trials(
    benchmark, bench_datasets, estimator
):
    """Lemma VI.2 vs VI.3: at the same trial count, per-candidate KL
    costs O(|C|) per candidate-trial while the shared estimator costs
    O(|C|) per trial total."""
    graph = bench_datasets["protein"]
    candidates = prepare_candidates(graph, 80, rng=4)
    trials = 200

    if estimator == "optimized":
        run = lambda: estimate_probabilities_optimized(  # noqa: E731
            candidates, trials, rng=5
        )
    else:
        run = lambda: estimate_probabilities_karp_luby(  # noqa: E731
            candidates, rng=5, n_trials=trials
        )
    outcome = benchmark.pedantic(run, rounds=2, iterations=1)
    assert outcome.estimates


def test_pair_side_choice_matters(bench_datasets):
    """The Lemma V.1 'auto' side selection picks the cheaper partition
    on the lopsided jester network."""
    graph = bench_datasets["jester"]
    cheap = ordering_sampling(graph, 20, rng=2, pair_side="auto")
    # jester: 30 jokes x 1000 users; middles on the joke side are huge,
    # so pairing on the user side (middles = jokes) is the expensive way.
    users_mid = ordering_sampling(graph, 20, rng=2, pair_side="right")
    assert (
        cheap.stats["angles_processed"]
        <= users_mid.stats["angles_processed"]
    )


def test_backbone_seeding_caps_lemma_vi5_error():
    """Ablation: seeding C_MB with the heaviest backbone butterflies
    (a beyond-the-paper extension) removes the worst Lemma VI.5
    overestimation when the preparing budget is tiny."""
    import numpy as np

    from repro.core import exact_mpmb_by_worlds
    from repro.datasets import random_bipartite
    from repro.datasets.synthetic import uniform_probs, uniform_weights
    from repro.core import ordering_listing_sampling, prepare_candidates

    graph = random_bipartite(
        5, 5, 14, rng=3,
        weight_fn=uniform_weights(1.0, 4.0),
        prob_fn=uniform_probs(0.2, 0.8),
        name="seeding-ablation",
    )
    exact = exact_mpmb_by_worlds(graph)
    if not exact.estimates:
        return  # degenerate draw; nothing to measure

    def worst_overestimate(seed_top: int) -> float:
        worst = 0.0
        for seed in range(8):
            candidates = prepare_candidates(
                graph, 2, rng=seed, seed_backbone_top=seed_top
            )
            result = ordering_listing_sampling(
                graph, 6_000, candidates=candidates, rng=seed + 100
            )
            for key, estimate in result.estimates.items():
                worst = max(
                    worst, estimate - exact.estimates.get(key, 0.0)
                )
        return worst

    unseeded = worst_overestimate(0)
    seeded = worst_overestimate(5)
    # Sampling noise aside, guaranteed heavy blockers can only reduce
    # the positive bias.
    assert seeded <= unseeded + 0.02


def test_single_butterfly_query_vs_full_ranking(benchmark, bench_datasets):
    """Extension bench: when only one butterfly's P(B) is needed, the
    conditional query answers with far fewer trials than certifying it
    through a full OS ranking (its Theorem IV.1 budget shrinks by the
    existence-probability factor)."""
    from repro.core import estimate_probability, prepare_candidates
    from repro.sampling import monte_carlo_trial_bound

    graph = bench_datasets["abide"]
    candidates = prepare_candidates(graph, 60, rng=7)
    butterfly = candidates[0]

    estimate = benchmark.pedantic(
        lambda: estimate_probability(graph, butterfly, 500, rng=8),
        rounds=2, iterations=1,
    )
    assert 0.0 <= estimate.probability <= 1.0
    if 0.0 < estimate.probability < 1.0:
        conditional_budget = estimate.trial_bound()
        direct_budget = monte_carlo_trial_bound(
            max(estimate.probability, 1e-6)
        )
        assert conditional_budget < direct_budget
