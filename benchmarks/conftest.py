"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a scaled
trial budget (this is pure Python; the paper's testbed was C++17/-O3) and
asserts the paper's *qualitative* shape — who wins, in what order, where
the crossovers sit.  The rendered experiment reports are printed so that
``pytest benchmarks/ --benchmark-only -s`` (or the captured output in
bench_output.txt) doubles as the EXPERIMENTS.md source material.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.experiments import ExperimentConfig

#: Scaled budget used by every figure benchmark.  The paper's settings
#: are N=20 000 direct/sampling trials and 100 preparing trials; the
#: extrapolated columns in the timing figures scale measurements back up.
BENCH_CONFIG = ExperimentConfig(
    profile="bench",
    seed=0,
    n_direct=300,
    n_mcvp=3,
    n_prepare=100,
    n_sampling=600,
    paper_direct=20_000,
)

#: A faster two-dataset config for the sweep-style figures (8, 9).
SWEEP_CONFIG = ExperimentConfig(
    profile="bench",
    seed=0,
    n_direct=200,
    n_mcvp=2,
    n_prepare=60,
    n_sampling=400,
    paper_direct=20_000,
    datasets=("abide", "protein"),
)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def sweep_config() -> ExperimentConfig:
    return SWEEP_CONFIG


@pytest.fixture(scope="session")
def bench_datasets():
    """All four bench-profile datasets, loaded once per session."""
    return {
        name: load_dataset(name, "bench", rng=0)
        for name in BENCH_CONFIG.datasets
    }
