"""Figure 8 — preparing vs sampling time at N ∈ {0, 25, 50, 75, 100}%."""

import pytest

from repro.core import (
    estimate_probabilities_optimized,
    prepare_candidates,
)
from repro.experiments import run_experiment

from .conftest import SWEEP_CONFIG


@pytest.mark.parametrize("name", SWEEP_CONFIG.datasets)
def test_preparing_phase(benchmark, bench_datasets, name):
    """The 100-trial preparing phase (the paper's fixed setting)."""
    graph = bench_datasets[name]
    candidates = benchmark.pedantic(
        lambda: prepare_candidates(graph, 100, rng=1),
        rounds=2, iterations=1,
    )
    assert len(candidates) > 0


@pytest.mark.parametrize("name", SWEEP_CONFIG.datasets)
def test_sampling_phase(benchmark, bench_datasets, name):
    """The shared-trial estimator over a prepared candidate set."""
    graph = bench_datasets[name]
    candidates = prepare_candidates(graph, 100, rng=1)
    outcome = benchmark.pedantic(
        lambda: estimate_probabilities_optimized(candidates, 500, rng=2),
        rounds=2, iterations=1,
    )
    assert outcome.total_trials == 500


def test_fig8_report_and_shape(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("fig8", SWEEP_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    for name, methods in outcome.data.items():
        for method, times in methods.items():
            # Cumulative time grows with the trial fraction.  Each
            # fraction is an independently timed run, so allow a 15%
            # scheduling-noise inversion between adjacent points.
            assert all(
                times[i] <= 1.15 * times[i + 1] + 1e-9
                for i in range(len(times) - 1)
            ), (name, method, times)
            # And the full budget strictly exceeds the quarter budget.
            assert times[1] <= times[-1] * 1.15 + 1e-9, (
                name, method, times,
            )
        # OS starts at zero (no preparing phase); OLS variants pay the
        # same preparing cost up front.
        assert methods["os"][0] == 0.0
        assert methods["ols"][0] > 0.0
        assert methods["ols"][0] == methods["ols-kl"][0]


def test_sampling_cheaper_than_direct_trials(bench_datasets):
    """The OLS sampling phase walks candidates only — its per-trial cost
    must be far below an OS full-network trial (the Figure 8 story)."""
    import time

    graph = bench_datasets["protein"]
    candidates = prepare_candidates(graph, 100, rng=1)

    start = time.perf_counter()
    estimate_probabilities_optimized(candidates, 500, rng=2)
    ols_per_trial = (time.perf_counter() - start) / 500

    from repro.core import ordering_sampling

    start = time.perf_counter()
    ordering_sampling(graph, 50, rng=2)
    os_per_trial = (time.perf_counter() - start) / 50

    assert ols_per_trial < os_per_trial / 5
