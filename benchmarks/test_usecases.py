"""Figures 2-3 — the introduction's use cases, run end to end.

Not evaluation-section figures, but the paper's qualitative claims are
checkable: the cold-item reward flips the MPMB from hot to niche items
(Fig. 2), and the TC brain's activation intensity is roughly twice the
ASD one (Fig. 3).
"""

from repro.experiments import run_experiment

from .conftest import BENCH_CONFIG


def test_fig2_report_and_shape(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("fig2", BENCH_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    flat = outcome.data["flat (Fig. 2a)"]
    rewarded = outcome.data["rewarded (Fig. 2b)"]
    # Paper shape: without the reward, hot items win with a higher
    # probability; with it, the niche butterfly wins with a higher
    # weight but lower probability.
    assert set(flat["butterfly"][2:]) == {"football", "harry-potter"}
    assert set(rewarded["butterfly"][2:]) == {"skating", "chess"}
    assert rewarded["weight"] > flat["weight"]
    assert rewarded["probability"] < flat["probability"]


def test_fig3_report_and_shape(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("fig3", BENCH_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    ratio = outcome.data["intensity_ratio"]
    tc = outcome.data["tc"]
    asd = outcome.data["asd"]
    # Paper shape: intensity "on average twice as high in TC compared
    # to ASD" — assert the direction and a broad 1.2x-6x window.
    assert 1.2 < ratio < 6.0, ratio
    assert len(tc.findings) == 10
    # Clustering: the top MPMBs concentrate on recurrent ROIs.
    assert max(tc.roi_clusters().values()) >= 3
    assert len(asd.findings) > 0
