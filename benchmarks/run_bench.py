#!/usr/bin/env python
"""Benchmark the four sampling methods and write ``BENCH_sampling.json``.

Runs every method in :data:`repro.experiments.harness.METHOD_ORDER`
(MC-VP, OS, OLS-KL, OLS) on registry synthetic datasets and records, per
(dataset, method) pair: wall-clock seconds, trials per second, peak
tracemalloc bytes, and — where the platform exposes it — the process's
``ru_maxrss`` high-water mark.  The output schema is stable (versioned
``format`` + ``kind`` discriminators, sorted keys) so downstream tooling
and the regression policy in ``docs/benchmarks.md`` can diff runs.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py \
        --datasets abide movielens --trials 2000 --out BENCH_sampling.json

The default budgets are deliberately small (this is a pure-Python
reproduction of a C++ testbed); crank ``--trials`` up on faster
machines.  Metrics come from the same observability layer the CLI uses,
so each entry also embeds the per-method counters (prune rate, candidate
counts, lazy-cache hit rate, ...).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Dict, List, Optional

try:
    import resource
except ImportError:  # pragma: no cover - Windows has no resource module
    resource = None

from repro.datasets import dataset_names, load_dataset
from repro.experiments.harness import (
    METHOD_ORDER,
    ExperimentConfig,
    run_method,
)
from repro.observability import Observer

#: Version of the benchmark document layout.
BENCH_FORMAT = 1

#: Discriminator so arbitrary JSON files are rejected early.
BENCH_KIND = "repro-bench"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the sampling methods; write BENCH_sampling.json."
        )
    )
    parser.add_argument(
        "--out", default="BENCH_sampling.json", metavar="PATH",
        help="output JSON path (default: BENCH_sampling.json)",
    )
    parser.add_argument(
        "--datasets", nargs="+", default=["abide", "movielens"],
        choices=dataset_names(), metavar="NAME",
        help="registry datasets to sweep (default: abide movielens)",
    )
    parser.add_argument(
        "--profile", default="bench", choices=("bench", "paper"),
        help="dataset generation profile (default: bench)",
    )
    parser.add_argument(
        "--trials", type=int, default=1_000,
        help="direct/sampling-phase trials for OS and OLS (default: 1000)",
    )
    parser.add_argument(
        "--mcvp-trials", type=int, default=4,
        help="MC-VP trials (its per-trial cost dwarfs the others; "
             "default: 4)",
    )
    parser.add_argument(
        "--prepare", type=int, default=50,
        help="OLS preparing-phase trials (default: 50)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--methods", nargs="+", default=list(METHOD_ORDER),
        choices=METHOD_ORDER, metavar="NAME",
        help="methods to benchmark (default: all four)",
    )
    parser.add_argument(
        "--block-size", type=int, default=None, metavar="N",
        help="also benchmark each method through the batched kernel "
             "layer with N trials per block, as a scalar-vs-batched "
             "comparison entry (method suffixed '-batched'; see "
             "docs/performance.md)",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="also benchmark each method in anytime adaptive mode "
             "(racing elimination + pre-screen; method suffixed "
             "'-adaptive', realised budgets in the counters; see "
             "docs/performance.md)",
    )
    return parser


def bench_entry(
    dataset: str,
    method: str,
    config: ExperimentConfig,
    label: Optional[str] = None,
) -> Dict:
    """One (dataset, method) measurement as a JSON-ready dict.

    ``label`` overrides the recorded method name — the scalar-vs-batched
    comparison reruns ``method`` with ``config.block_size`` set and
    records it as ``"<method>-batched"`` under the same schema.
    """
    graph = config.load(dataset)
    observer = Observer()
    measurement = run_method(
        graph, method, config, trace_memory=True, observer=observer
    )
    result = measurement.value
    trials_per_second = (
        result.n_trials / measurement.seconds
        if measurement.seconds > 0 else 0.0
    )
    snapshot = observer.metrics.to_dict()
    return {
        "dataset": dataset,
        "profile": config.profile,
        "method": label or method,
        "n_trials": result.n_trials,
        "best_probability": result.best_probability,
        "wall_seconds": measurement.seconds,
        "trials_per_second": trials_per_second,
        "peak_tracemalloc_bytes": measurement.peak_bytes,
        "ru_maxrss_kb": (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            if resource is not None else None
        ),
        "degraded": result.degraded,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
    }


def safe_bench_entry(
    dataset: str,
    method: str,
    config: ExperimentConfig,
    label: Optional[str] = None,
) -> Dict:
    """A :func:`bench_entry` that survives one method crashing.

    A single failing (dataset, method) pair must not void the whole
    sweep: the failure is recorded as a schema-compatible entry with an
    ``"error"`` key (and no timing fields), and every remaining pair
    still runs.  Downstream consumers skip entries carrying ``error``.
    """
    try:
        return bench_entry(dataset, method, config, label=label)
    except Exception as error:  # noqa: BLE001 - harness must finish
        print(
            f"  FAILED {label or method} on {dataset}: "
            f"{type(error).__name__}: {error}",
            file=sys.stderr,
        )
        return {
            "dataset": dataset,
            "profile": config.profile,
            "method": label or method,
            "error": f"{type(error).__name__}: {error}",
        }


def run_suite(args: argparse.Namespace) -> Dict:
    """The full benchmark document for ``args``."""
    config = ExperimentConfig(
        profile=args.profile,
        seed=args.seed,
        n_direct=args.trials,
        n_mcvp=args.mcvp_trials,
        n_prepare=args.prepare,
        n_sampling=args.trials,
    )
    batched = (
        replace(config, block_size=args.block_size)
        if args.block_size is not None else None
    )
    adaptive = replace(config, adaptive=True) if args.adaptive else None
    entries: List[Dict] = []
    for dataset in args.datasets:
        for method in args.methods:
            print(f"benchmarking {method} on {dataset} ...",
                  file=sys.stderr)
            entries.append(
                safe_bench_entry(dataset, method, config)
            )
            if batched is not None:
                print(f"benchmarking {method}-batched on {dataset} ...",
                      file=sys.stderr)
                entries.append(
                    safe_bench_entry(
                        dataset, method, batched,
                        label=f"{method}-batched",
                    )
                )
            if adaptive is not None:
                print(f"benchmarking {method}-adaptive on {dataset} ...",
                      file=sys.stderr)
                entries.append(
                    safe_bench_entry(
                        dataset, method, adaptive,
                        label=f"{method}-adaptive",
                    )
                )
    return {
        "format": BENCH_FORMAT,
        "kind": BENCH_KIND,
        "suite": "sampling",
        "config": {
            "profile": args.profile,
            "seed": args.seed,
            "trials": args.trials,
            "mcvp_trials": args.mcvp_trials,
            "prepare": args.prepare,
            "datasets": list(args.datasets),
            "methods": list(args.methods),
            "block_size": args.block_size,
            "adaptive": args.adaptive,
        },
        "entries": entries,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.block_size is not None and args.block_size < 1:
        parser.error("--block-size must be at least 1")
    document = run_suite(args)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(document['entries'])} entries to {args.out}",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
