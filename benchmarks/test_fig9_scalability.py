"""Figure 9 — scalability over 25/50/75/100% vertex-sampled datasets."""

import numpy as np
import pytest

from repro.core import ordering_sampling
from repro.experiments import run_experiment
from repro.graph import sample_vertices

from .conftest import SWEEP_CONFIG


@pytest.mark.parametrize("fraction", [0.25, 0.5, 1.0])
def test_os_scaling_with_size(benchmark, bench_datasets, fraction):
    """OS cost grows with the vertex sample (Lemma V.1's degree terms)."""
    graph = bench_datasets["protein"]
    sub = sample_vertices(graph, fraction, np.random.default_rng(7))
    benchmark.pedantic(
        lambda: ordering_sampling(sub, 20, rng=1),
        rounds=2, iterations=1,
    )


def test_fig9_report_and_shape(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_experiment("fig9", SWEEP_CONFIG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(outcome.text)

    for name, methods in outcome.data.items():
        # Paper shape: OS cost rises with dataset scale (its per-trial
        # cost tracks degrees).  Compare the smallest vs largest sample;
        # scheduling noise makes strict per-step monotonicity too brittle.
        os_times = methods["os"]
        assert os_times[-1] > os_times[0], (name, os_times)


def test_os_work_scales_with_degrees(bench_datasets):
    """The mechanism behind Figure 9: angles processed per trial grow
    superlinearly with the vertex fraction on the protein network."""
    graph = bench_datasets["protein"]
    work = []
    for fraction in (0.25, 0.5, 1.0):
        sub = sample_vertices(graph, fraction, np.random.default_rng(7))
        result = ordering_sampling(sub, 30, rng=1, prune=False)
        work.append(result.stats["angles_processed"] / 30)
    assert work[0] < work[1] < work[2]
    # Halving vertices quarters the (edge-dense) angle work, roughly.
    assert work[2] > 3 * work[1]
